(** The policy engine: a region structure plus the permission-check logic
    and counters. One engine backs one policy module instance.

    Check semantics (§3.1): walk the structure for the first region
    containing the accessed byte range; if found, the access is allowed
    iff the region's protection flags include every requested flag; if no
    region matches, the default action applies. The paper's evaluated
    configuration is the 64-entry linear table with default deny.

    Two optional fast tiers sit in front of the exact walk:

    - the {!Shadow} structure kind — a page-granular permission shadow
      ("guard TLB", see {!Shadow_table}) wrapped around the linear table;
    - per-guard-site inline caches ({!enable_site_cache}): a direct-mapped
      array keyed by the static site id the guard-injection pass assigns,
      each slot remembering the (page, protection) fact its site last
      resolved. A hit validates page and epoch, so the cached fact is
      site-independent truth and slot aliasing between sites is harmless.

    Both tiers are invalidated by a single {!epoch} counter bumped on
    every policy mutation (and, via the policy module, on every policy or
    mode ioctl), keeping live policy pushes and enforcement-mode flips
    exact. Both answer only when the answer provably equals the exact
    walk's; anything else (page straddle, cross-page access, unknown
    site, flag mismatch) falls back to the exact structure, so decisions
    are byte-for-byte identical to the plain walk. *)

type kind = Linear | Sorted | Splay | Rbtree | Bloom | Cached | Shadow

let kind_to_string = function
  | Linear -> "linear"
  | Sorted -> "sorted"
  | Splay -> "splay"
  | Rbtree -> "rbtree"
  | Bloom -> "bloom+linear"
  | Cached -> "cached+linear"
  | Shadow -> "shadow+linear"

let all_kinds = [ Linear; Sorted; Splay; Rbtree; Bloom; Cached; Shadow ]

(** Decision statistics. Tier-invariant: a fast-tier (inline-cache) hit
    credits the same [entries_scanned] the exact walk would have
    recorded, so these counters depend only on the checks performed,
    never on which tier answered them (pinned by test_engine). *)
type stats = {
  mutable checks : int;
  mutable allowed : int;
  mutable denied : int;
  mutable entries_scanned : int;
}

(** Tier statistics: how often the site inline cache answered. These are
    the counters that legitimately differ between tiers, kept apart from
    the decision stats above. A "miss" is any fast-path entry that had to
    defer to the exact walk (cold/stale slot, wrong page, cross-page
    access, or a cached fact that could not prove an allow). *)
type tier_stats = { mutable ic_hits : int; mutable ic_misses : int }

type verdict =
  | Allowed of Region.t option
      (** matching region, or [None] under default-allow *)
  | Denied of Region.t option
      (** region that matched but lacked permissions, or [None] when
          nothing matched under default-deny *)

(* Per-guard-site inline caches: parallel int arrays (no per-entry boxing)
   indexed by [site land (site_cache_size - 1)]. A slot is a (epoch, page,
   prot) triple; [sc_prot] holds the page's uniform protection bits. The
   backing tag array lives in simulated kernel memory so hits charge one
   hot probe, like every other policy structure. *)
let site_cache_size = 1024

type site_cache = {
  sc_vaddr : int;
  sc_epoch : int array;
  sc_page : int array;
  sc_prot : int array;
  sc_pcs : int array;  (** stable branch-site ids per slot *)
  sc_depth : int array;
      (** entries the exact walk would scan for this page — cached so an
          inline-cache hit can credit the tier-invariant scan depth *)
  sc_rbase : int array;
      (** base of the first-match region for this page (-1 = none), for
          per-region trace attribution on a hit *)
}

type t = {
  kernel : Kernel.t;
  instance : Structure.instance;
  mutable default_allow : bool;
  stats : stats;
  tier : tier_stats;
  mutable trace : Trace.t option;
      (** observability sink; [None] (the default) makes every trace
          touch-point a single cheap match, keeping the traced-off path
          bit-identical to the pre-trace simulation *)
  mutable epoch : int;
      (** bumped on every policy mutation; fast tiers validate against it *)
  mutable site_cache : site_cache option;
  mutable last_deny : Region.t option;
      (** diagnostics for the most recent {!check_fast} denial: the region
          that matched but lacked permission, mirroring {!Denied}'s payload
          without allocating on the hot path *)
  perm_pc : int array;
      (** branch-site ids for the permission branch, precomputed per
          protection value so the hot path allocates no strings; values
          are identical to [Hashtbl.hash ("perm", prot_to_string prot)] *)
}

let make_instance kernel kind ~capacity : Structure.instance =
  match kind with
  | Linear ->
    Structure.I ((module Linear_table), Linear_table.create kernel ~capacity)
  | Sorted ->
    Structure.I ((module Sorted_table), Sorted_table.create kernel ~capacity)
  | Splay ->
    Structure.I ((module Splay_tree), Splay_tree.create kernel ~capacity)
  | Rbtree ->
    Structure.I ((module Rb_tree), Rb_tree.create kernel ~capacity)
  | Bloom ->
    Structure.I ((module Bloom_front), Bloom_front.create kernel ~capacity)
  | Cached ->
    Structure.I ((module Lookup_cache), Lookup_cache.create kernel ~capacity)
  | Shadow ->
    Structure.I ((module Shadow_table), Shadow_table.create kernel ~capacity)

let create ?(kind = Linear) ?(capacity = Linear_table.default_capacity)
    ?(default_allow = false) kernel =
  {
    kernel;
    instance = make_instance kernel kind ~capacity;
    default_allow;
    stats = { checks = 0; allowed = 0; denied = 0; entries_scanned = 0 };
    tier = { ic_hits = 0; ic_misses = 0 };
    trace = None;
    epoch = 0;
    site_cache = None;
    last_deny = None;
    perm_pc =
      Array.init 4 (fun p -> Hashtbl.hash ("perm", Region.prot_to_string p));
  }

(** Invalidate every fast tier in O(1). Policy mutations call this
    internally; the policy module also bumps it on mode ioctls. *)
let bump_epoch t = t.epoch <- t.epoch + 1

let epoch t = t.epoch

(** Attach/detach the observability sink. Detached (the default) costs
    nothing — simulated cycles stay bit-identical to a build without the
    trace layer (the bench [tracegate] target pins this). *)
let set_trace t tr = t.trace <- tr

let trace t = t.trace

let lifecycle t kind ~info =
  match t.trace with
  | None -> ()
  | Some tr -> Trace.on_lifecycle tr kind ~info

let add_region t r =
  match Structure.add t.instance r with
  | Ok () ->
    bump_epoch t;
    lifecycle t Trace.Policy_add ~info:r.Region.base;
    Ok ()
  | Error _ as e -> e

let remove_region t ~base =
  let removed = Structure.remove t.instance ~base in
  if removed then begin
    bump_epoch t;
    lifecycle t Trace.Policy_remove ~info:base
  end;
  removed

let clear t =
  Structure.clear t.instance;
  bump_epoch t;
  lifecycle t Trace.Policy_clear ~info:0

let set_default_allow t b =
  t.default_allow <- b;
  bump_epoch t;
  lifecycle t Trace.Policy_default ~info:(if b then 1 else 0)

let count t = Structure.count t.instance
let regions t = Structure.regions t.instance
let stats t = t.stats
let tier_stats t = t.tier
let structure_name t = Structure.name t.instance
let table_region t = Structure.table_region t.instance

let reset_stats t =
  t.stats.checks <- 0;
  t.stats.allowed <- 0;
  t.stats.denied <- 0;
  t.stats.entries_scanned <- 0;
  t.tier.ic_hits <- 0;
  t.tier.ic_misses <- 0

(** Load a whole policy (clearing the current one); errors abort. *)
let set_policy t rs =
  clear t;
  List.iter
    (fun r ->
      match add_region t r with
      | Ok () -> ()
      | Error e -> invalid_arg ("Engine.set_policy: " ^ e))
    rs

(* Decision-event emission; a single match when no sink is attached. *)
let emit_guard t ~site ~addr ~size ~flags ~allowed ~fast ~scanned ~region_base
    =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.on_guard tr ~site ~addr ~size ~flags ~allowed ~fast ~scanned
      ~region_base

(** The permissions check at the heart of [carat_guard]. Charges the
    guard-body prologue plus whatever the structure walk costs. [site] is
    the static guard-site id for observability attribution (-1 = not a
    guard site). *)
let check_sited t ~site ~addr ~size ~flags : verdict =
  let machine = Kernel.machine t.kernel in
  (* prologue: argument marshalling, flag mask, bounds set-up *)
  Machine.Model.retire machine 4;
  let out = Structure.lookup t.instance ~addr ~size in
  t.stats.checks <- t.stats.checks + 1;
  t.stats.entries_scanned <- t.stats.entries_scanned + out.Structure.scanned;
  match out.Structure.matched with
  | Some r ->
    Machine.Model.retire machine 2;
    let ok = Region.permits r ~flags in
    Machine.Model.branch machine
      ~pc:t.perm_pc.(r.Region.prot land 3)
      ~taken:ok;
    emit_guard t ~site ~addr ~size ~flags ~allowed:ok ~fast:false
      ~scanned:out.Structure.scanned ~region_base:r.Region.base;
    if ok then begin
      t.stats.allowed <- t.stats.allowed + 1;
      Allowed (Some r)
    end
    else begin
      t.stats.denied <- t.stats.denied + 1;
      Denied (Some r)
    end
  | None ->
    emit_guard t ~site ~addr ~size ~flags ~allowed:t.default_allow ~fast:false
      ~scanned:out.Structure.scanned ~region_base:(-1);
    if t.default_allow then begin
      t.stats.allowed <- t.stats.allowed + 1;
      Allowed None
    end
    else begin
      t.stats.denied <- t.stats.denied + 1;
      Denied None
    end

let check t ~addr ~size ~flags : verdict = check_sited t ~site:(-1) ~addr ~size ~flags

(* ------------------------------------------------------------------ *)
(* site-indexed inline-cache fast path *)

(** Allocate the inline-cache arrays (idempotent). Off by default so the
    paper's evaluated configuration — and its simulated-cycle figures —
    are untouched unless a run opts in. *)
let enable_site_cache t =
  match t.site_cache with
  | Some _ -> ()
  | None ->
    t.site_cache <-
      Some
        {
          sc_vaddr = Kernel.kmalloc t.kernel ~size:(site_cache_size * 16);
          sc_epoch = Array.make site_cache_size (-1);
          sc_page = Array.make site_cache_size (-1);
          sc_prot = Array.make site_cache_size 0;
          sc_pcs =
            Array.init site_cache_size (fun i -> Hashtbl.hash ("site-ic", i));
          sc_depth = Array.make site_cache_size 0;
          sc_rbase = Array.make site_cache_size (-1);
        }

let site_cache_enabled t = t.site_cache <> None

(** Region that matched but lacked permission on the most recent
    [check_fast] denial ([None] = nothing matched under default-deny). *)
let last_deny t = t.last_deny

(* The page's uniform-permission classification iff it holds for every
   possible in-page byte range: every region either fully contains or is
   disjoint from the page, making the first full container (table order)
   the first-match answer for any in-page range. Partial overlap -> None
   (uncacheable). Returns [(prot, depth, rbase)]: the protection bits,
   the tier-invariant scan depth (how many entries the exact linear-order
   walk examines before answering — the match's 1-based position, or the
   region count when nothing matches), and the matched region's base (-1
   when uncovered). Uncovered pages get the default encoded as protection
   bits; flags = 0 never uses the cache (see [check_fast]), which keeps
   the "no region matched" deny-on-default exact. *)
let page_uniform_prot t page =
  let lo = page lsl Shadow_table.page_bits in
  let hi = lo + Shadow_table.page_size in
  let rec go idx first_full = function
    | [] -> (
      match first_full with
      | Some ((r : Region.t), at) -> Some (r.Region.prot, at + 1, r.Region.base)
      | None ->
        let depth = Structure.count t.instance in
        if t.default_allow then Some (Region.prot_rw, depth, -1)
        else Some (0, depth, -1))
    | (r : Region.t) :: rest ->
      let rlim = Region.limit r in
      if r.Region.base < hi && lo < rlim then
        if r.Region.base <= lo && hi <= rlim then
          go (idx + 1)
            (match first_full with Some _ -> first_full | None -> Some (r, idx))
            rest
        else None
      else go (idx + 1) first_full rest
  in
  go 0 None (Structure.regions t.instance)

(* Exact walk on behalf of [check_fast]: full cost, full diagnostics. *)
let check_slow t ~site ~addr ~size ~flags =
  match check_sited t ~site ~addr ~size ~flags with
  | Allowed _ ->
    t.last_deny <- None;
    true
  | Denied m ->
    t.last_deny <- m;
    false

let fill_site sc t ~i ~page =
  match page_uniform_prot t page with
  | None -> () (* straddling page: every access re-walks, by design *)
  | Some (prot, depth, rbase) ->
    sc.sc_epoch.(i) <- t.epoch;
    sc.sc_page.(i) <- page;
    sc.sc_prot.(i) <- prot;
    sc.sc_depth.(i) <- depth;
    sc.sc_rbase.(i) <- rbase;
    let machine = Kernel.machine t.kernel in
    (* classification arithmetic + the tag store; the walk itself was
       already charged by the exact lookup, like a TLB miss's page walk *)
    Machine.Model.retire machine (2 * max 1 (Structure.count t.instance));
    Machine.Model.store machine (sc.sc_vaddr + (i * 16)) 8

(** Boolean fast-path check: allocation-free on an inline-cache hit, and
    decision-identical to {!check} always (misses and mismatches defer to
    it). [site] is the static guard-site id (-1 = unknown site, e.g. a
    legacy 3-argument guard call: always the exact walk). On denial the
    matching-region diagnostic is available from {!last_deny}. *)
let check_fast t ~site ~addr ~size ~flags : bool =
  match t.site_cache with
  | Some sc when site >= 0 && addr >= 0 && flags <> 0 ->
    let machine = Kernel.machine t.kernel in
    (* same prologue the exact path charges *)
    Machine.Model.retire machine 4;
    let i = site land (site_cache_size - 1) in
    (* one probe of the site's slot (hot after first use) + validation *)
    Machine.Model.load machine (sc.sc_vaddr + (i * 16)) 8;
    Machine.Model.retire machine 2;
    let page = addr lsr Shadow_table.page_bits in
    let hit =
      sc.sc_epoch.(i) = t.epoch
      && sc.sc_page.(i) = page
      && (addr + size - 1) lsr Shadow_table.page_bits = page
    in
    Machine.Model.branch machine ~pc:sc.sc_pcs.(i) ~taken:hit;
    if hit then
      if flags land sc.sc_prot.(i) = flags then begin
        t.stats.checks <- t.stats.checks + 1;
        t.stats.allowed <- t.stats.allowed + 1;
        (* credit the scan depth the exact walk would have recorded, so
           decision stats do not depend on which tier answered *)
        t.stats.entries_scanned <- t.stats.entries_scanned + sc.sc_depth.(i);
        (* an allow supersedes any earlier denial diagnostic, exactly as
           the exact walk's Allowed branch does *)
        t.last_deny <- None;
        t.tier.ic_hits <- t.tier.ic_hits + 1;
        (match t.trace with
        | None -> ()
        | Some tr ->
          Trace.on_fast_hit tr ~site;
          Trace.on_guard tr ~site ~addr ~size ~flags ~allowed:true ~fast:true
            ~scanned:sc.sc_depth.(i) ~region_base:sc.sc_rbase.(i));
        true
      end
      else begin
        (* cached fact says deny (or an exotic flag combination): take the
           exact walk for the authoritative verdict and diagnostics *)
        t.tier.ic_misses <- t.tier.ic_misses + 1;
        (match t.trace with
        | None -> ()
        | Some tr -> Trace.on_fast_miss tr ~site);
        check_slow t ~site ~addr ~size ~flags
      end
    else begin
      t.tier.ic_misses <- t.tier.ic_misses + 1;
      (match t.trace with
      | None -> ()
      | Some tr -> Trace.on_fast_miss tr ~site);
      let ok = check_slow t ~site ~addr ~size ~flags in
      if (addr + size - 1) lsr Shadow_table.page_bits = page then
        fill_site sc t ~i ~page;
      ok
    end
  | _ -> check_slow t ~site ~addr ~size ~flags
