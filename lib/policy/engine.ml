(** The policy engine: a region structure plus the permission-check logic
    and counters. One engine backs one policy module instance.

    Check semantics (§3.1): walk the structure for the first region
    containing the accessed byte range; if found, the access is allowed
    iff the region's protection flags include every requested flag; if no
    region matches, the default action applies. The paper's evaluated
    configuration is the 64-entry linear table with default deny.

    Two optional fast tiers sit in front of the exact walk:

    - the {!Shadow} structure kind — a page-granular permission shadow
      ("guard TLB", see {!Shadow_table}) wrapped around the linear table;
    - per-guard-site inline caches ({!enable_site_cache}): a direct-mapped
      array keyed by the static site id the guard-injection pass assigns,
      each slot remembering the (page, protection) fact its site last
      resolved. A hit validates page and epoch, so the cached fact is
      site-independent truth and slot aliasing between sites is harmless.

    Both tiers are invalidated by a single {!epoch} counter bumped on
    every policy mutation (and, via the policy module, on every policy or
    mode ioctl), keeping live policy pushes and enforcement-mode flips
    exact. Both answer only when the answer provably equals the exact
    walk's; anything else (page straddle, cross-page access, unknown
    site, flag mismatch) falls back to the exact structure, so decisions
    are byte-for-byte identical to the plain walk.

    SMP: all hot-path counters, the inline cache, the trace sink and the
    denial diagnostic live in a {!view} — one per simulated CPU. A
    single-CPU engine has exactly one view (the default), and every
    accessor below reads it, so single-CPU behaviour and simulated cost
    are unchanged. The scheduler switches {!set_current_view} when it
    switches CPUs; {!merged_stats}/{!merged_tier} aggregate ftrace-style.
    Policy replacement for concurrent readers goes through
    {!build_instance}/{!publish}: the writer constructs a complete new
    structure generation off-line and installs it with a single pointer
    store (plus the usual epoch bump), so a reader mid-guard on another
    CPU only ever observes a fully-built table — never a half-written
    entry. Grace-period tracking and IPI shootdown live in [Smp.Rcu]. *)

type kind = Linear | Sorted | Splay | Rbtree | Itree | Bloom | Cached | Shadow

let kind_to_string = function
  | Linear -> "linear"
  | Sorted -> "sorted"
  | Splay -> "splay"
  | Rbtree -> "rbtree"
  | Itree -> "interval"
  | Bloom -> "bloom+linear"
  | Cached -> "cached+linear"
  | Shadow -> "shadow+linear"

let all_kinds = [ Linear; Sorted; Splay; Rbtree; Itree; Bloom; Cached; Shadow ]

(** Decision statistics. Tier-invariant: a fast-tier (inline-cache) hit
    credits the same [entries_scanned] the exact walk would have
    recorded, so these counters depend only on the checks performed,
    never on which tier answered them (pinned by test_engine). *)
type stats = {
  mutable checks : int;
  mutable allowed : int;
  mutable denied : int;
  mutable entries_scanned : int;
}

(** Tier statistics: how often the site inline cache answered. These are
    the counters that legitimately differ between tiers, kept apart from
    the decision stats above. A "miss" is any fast-path entry that had to
    defer to the exact walk (cold/stale slot, wrong page, cross-page
    access, or a cached fact that could not prove an allow). *)
type tier_stats = { mutable ic_hits : int; mutable ic_misses : int }

type verdict =
  | Allowed of Region.t option
      (** matching region, or [None] under default-allow *)
  | Denied of Region.t option
      (** region that matched but lacked permissions, or [None] when
          nothing matched under default-deny *)

(* Per-guard-site inline caches: parallel int arrays (no per-entry boxing)
   indexed by [site land (site_cache_size - 1)]. A slot is a (epoch, page,
   prot) triple; [sc_prot] holds the page's uniform protection bits. The
   backing tag array lives in simulated kernel memory so hits charge one
   hot probe, like every other policy structure. *)
let site_cache_size = 1024

type site_cache = {
  sc_vaddr : int;
  sc_epoch : int array;
  sc_page : int array;
  sc_prot : int array;
  sc_canary : int array;
      (** per-slot canary words, written on every fill with a value
          derived from the slot index; a wild write spraying the cache
          arrays clobbers them, and the integrity watchdog checks them *)
  sc_pcs : int array;  (** stable branch-site ids per slot *)
  sc_depth : int array;
      (** entries the exact walk would scan for this page — cached so an
          inline-cache hit can credit the tier-invariant scan depth *)
  sc_rbase : int array;
      (** base of the first-match region for this page (-1 = none), for
          per-region trace attribution on a hit *)
}

(** Per-CPU execution view: everything the guard hot path reads or writes
    besides the shared policy structure itself. The default view is CPU
    0's (and the only one in single-CPU runs). *)
type view = {
  v_id : int;  (** CPU id, 0-based; the default view is 0 *)
  v_stats : stats;
  v_tier : tier_stats;
  mutable v_trace : Trace.t option;
      (** per-CPU observability sink; [None] (the default) makes every
          trace touch-point a single cheap match, keeping the traced-off
          path bit-identical to the pre-trace simulation *)
  mutable v_site_cache : site_cache option;
  mutable v_last_deny : Region.t option;
      (** diagnostics for this view's most recent {!check_fast} denial *)
  mutable v_stale : int;
      (** paranoid-mode mismatches: fast-path allows that a fresh exact
          reference walk would deny (must stay 0; see {!set_verify}) *)
}

type t = {
  kernel : Kernel.t;
  kind : kind;
      (** the configured structure kind — the top of the tier lattice *)
  mutable active_kind : kind;
      (** the kind the *live* instance has. Normally [kind]; the
          integrity layer lowers it while a corrupt tier is quarantined
          (shadow → linear fallback) and restores it on re-promotion.
          {!build_instance} builds successors of this kind. *)
  mutable ic_on : bool;
      (** inline-cache master switch. [true] normally; the integrity
          layer clears it to quarantine the compiled+ic tier, forcing
          every sited check down to the next tier. *)
  mutable on_mutate : (unit -> unit) option;
      (** commit hook run after every epoch bump — i.e. after every
          legitimate policy/mode mutation. The integrity layer registers
          a snapshot refresh here, so out-of-band corruption (which
          bypasses this choke point) diverges from the authoritative
          copy and is caught at the next audit. *)
  capacity : int;
  mutable instance : Structure.instance;
      (** the live policy generation; replaced wholesale by {!publish} *)
  mutable default_allow : bool;
  mutable epoch : int;
      (** bumped on every policy mutation; fast tiers validate against it *)
  mutable generation : int;
      (** RCU publication count; 0 until the first {!publish} *)
  mutable gen_ptr : int;
      (** simulated vaddr of the published-instance pointer cell;
          allocated lazily on first publish so classic single-CPU runs
          keep a bit-identical memory layout *)
  default_view : view;
  mutable views : view list;  (** all views, default first *)
  mutable cur : view;
  mutable verify : bool;
      (** host-side paranoia: cross-check every inline-cache allow
          against a fresh exact reference walk (no simulated cost) *)
  perm_pc : int array;
      (** branch-site ids for the permission branch, precomputed per
          protection value so the hot path allocates no strings; values
          are identical to [Hashtbl.hash ("perm", prot_to_string prot)] *)
}

let make_instance kernel kind ~capacity : Structure.instance =
  match kind with
  | Linear ->
    Structure.I ((module Linear_table), Linear_table.create kernel ~capacity)
  | Sorted ->
    Structure.I ((module Sorted_table), Sorted_table.create kernel ~capacity)
  | Splay ->
    Structure.I ((module Splay_tree), Splay_tree.create kernel ~capacity)
  | Rbtree ->
    Structure.I ((module Rb_tree), Rb_tree.create kernel ~capacity)
  | Itree ->
    Structure.I ((module Interval_tree), Interval_tree.create kernel ~capacity)
  | Bloom ->
    Structure.I ((module Bloom_front), Bloom_front.create kernel ~capacity)
  | Cached ->
    Structure.I ((module Lookup_cache), Lookup_cache.create kernel ~capacity)
  | Shadow ->
    Structure.I ((module Shadow_table), Shadow_table.create kernel ~capacity)

let make_view id =
  {
    v_id = id;
    v_stats = { checks = 0; allowed = 0; denied = 0; entries_scanned = 0 };
    v_tier = { ic_hits = 0; ic_misses = 0 };
    v_trace = None;
    v_site_cache = None;
    v_last_deny = None;
    v_stale = 0;
  }

let create ?(kind = Linear) ?(capacity = Linear_table.default_capacity)
    ?(default_allow = false) kernel =
  let dv = make_view 0 in
  {
    kernel;
    kind;
    active_kind = kind;
    ic_on = true;
    on_mutate = None;
    capacity;
    instance = make_instance kernel kind ~capacity;
    default_allow;
    epoch = 0;
    generation = 0;
    gen_ptr = -1;
    default_view = dv;
    views = [ dv ];
    cur = dv;
    verify = false;
    perm_pc =
      Array.init 4 (fun p -> Hashtbl.hash ("perm", Region.prot_to_string p));
  }

(** Invalidate every fast tier in O(1). Policy mutations call this
    internally; the policy module also bumps it on mode ioctls. Runs the
    integrity commit hook (when registered) so the authoritative snapshot
    tracks every legitimate mutation. *)
let bump_epoch t =
  t.epoch <- t.epoch + 1;
  match t.on_mutate with None -> () | Some f -> f ()

let epoch t = t.epoch
let set_on_mutate t f = t.on_mutate <- f

(* --- integrity/degradation control surface ------------------------- *)

let active_kind t = t.active_kind
let set_active_kind t k = t.active_kind <- k
let ic_enabled t = t.ic_on
let set_ic_enabled t b = t.ic_on <- b

(** The live instance's shadow table, when the active structure is the
    shadow kind — the integrity audit and the corruption fault classes
    need the concrete slot arrays behind the packed instance. *)
let live_shadow t =
  match Structure.repr t.instance with
  | Shadow_table.Shadow s -> Some s
  | _ -> None

(** The live instance's exact linear table (directly, or behind the
    shadow front), for instance-digest corruption injection. *)
let live_linear t =
  match Structure.repr t.instance with
  | Linear_table.Linear l -> Some l
  | Shadow_table.Shadow s -> Some (Shadow_table.inner s)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* views *)

let default_view t = t.default_view
let current_view t = t.cur
let views t = t.views
let view_id v = v.v_id
let view_stats v = v.v_stats
let view_tier v = v.v_tier
let view_trace v = v.v_trace
let view_set_trace v tr = v.v_trace <- tr
let view_last_deny v = v.v_last_deny
let view_stale_allows v = v.v_stale

let canary_value i = Hashtbl.hash ("ic-canary", i)

let alloc_site_cache kernel =
  {
    sc_vaddr = Kernel.kmalloc kernel ~size:(site_cache_size * 16);
    sc_epoch = Array.make site_cache_size (-1);
    sc_page = Array.make site_cache_size (-1);
    sc_prot = Array.make site_cache_size 0;
    sc_canary = Array.init site_cache_size canary_value;
    sc_pcs = Array.init site_cache_size (fun i -> Hashtbl.hash ("site-ic", i));
    sc_depth = Array.make site_cache_size 0;
    sc_rbase = Array.make site_cache_size (-1);
  }

(** Register a fresh per-CPU view (with its own inline cache when
    [site_cache] is set). Views are append-only for the engine's
    lifetime; the scheduler owns which one is current. *)
let new_view ?(site_cache = false) t =
  let v = make_view (List.length t.views) in
  if site_cache then v.v_site_cache <- Some (alloc_site_cache t.kernel);
  t.views <- t.views @ [ v ];
  v

(** Make [v]'s counters/cache/trace the ones the hot path uses. Called by
    the SMP scheduler on every context switch; single-CPU runs never
    leave the default view. *)
let set_current_view t v = t.cur <- v

(** Drop a remote view's inline-cache contents, as an IPI shootdown
    handler would: every slot is retagged invalid. The epoch check
    already keeps stale slots from answering; this models the handler
    doing the flush work for real (cost is charged by the caller). *)
let flush_view_site_cache v =
  match v.v_site_cache with
  | None -> ()
  | Some sc ->
    Array.fill sc.sc_epoch 0 site_cache_size (-1);
    Array.fill sc.sc_page 0 site_cache_size (-1)

(** Attach/detach the observability sink (default view's — i.e. the only
    one in single-CPU runs). Detached (the default) costs nothing —
    simulated cycles stay bit-identical to a build without the trace
    layer (the bench [tracegate] target pins this). *)
let set_trace t tr = t.default_view.v_trace <- tr

let trace t = t.cur.v_trace

let lifecycle t kind ~info =
  match t.cur.v_trace with
  | None -> ()
  | Some tr -> Trace.on_lifecycle tr kind ~info

let add_region t r =
  match Structure.add t.instance r with
  | Ok () ->
    bump_epoch t;
    lifecycle t Trace.Policy_add ~info:r.Region.base;
    Ok ()
  | Error _ as e -> e

let remove_region t ~base =
  let removed = Structure.remove t.instance ~base in
  if removed then begin
    bump_epoch t;
    lifecycle t Trace.Policy_remove ~info:base
  end;
  removed

let clear t =
  Structure.clear t.instance;
  bump_epoch t;
  lifecycle t Trace.Policy_clear ~info:0

let set_default_allow t b =
  t.default_allow <- b;
  bump_epoch t;
  lifecycle t Trace.Policy_default ~info:(if b then 1 else 0)

let count t = Structure.count t.instance
let capacity t = t.capacity
let regions t = Structure.regions t.instance
let default_allow t = t.default_allow
let stats t = t.default_view.v_stats
let tier_stats t = t.default_view.v_tier
let structure_name t = Structure.name t.instance
let table_region t = Structure.table_region t.instance

(** Sum of the decision stats across every view (ftrace-style merge on
    read; the per-view records stay live). *)
let merged_stats t : stats =
  let m = { checks = 0; allowed = 0; denied = 0; entries_scanned = 0 } in
  List.iter
    (fun v ->
      m.checks <- m.checks + v.v_stats.checks;
      m.allowed <- m.allowed + v.v_stats.allowed;
      m.denied <- m.denied + v.v_stats.denied;
      m.entries_scanned <- m.entries_scanned + v.v_stats.entries_scanned)
    t.views;
  m

let merged_tier t : tier_stats =
  let m = { ic_hits = 0; ic_misses = 0 } in
  List.iter
    (fun v ->
      m.ic_hits <- m.ic_hits + v.v_tier.ic_hits;
      m.ic_misses <- m.ic_misses + v.v_tier.ic_misses)
    t.views;
  m

let reset_stats t =
  List.iter
    (fun v ->
      v.v_stats.checks <- 0;
      v.v_stats.allowed <- 0;
      v.v_stats.denied <- 0;
      v.v_stats.entries_scanned <- 0;
      v.v_tier.ic_hits <- 0;
      v.v_tier.ic_misses <- 0;
      v.v_stale <- 0)
    t.views

(** Load a whole policy (clearing the current one); errors abort. *)
let set_policy t rs =
  clear t;
  List.iter
    (fun r ->
      match add_region t r with
      | Ok () -> ()
      | Error e -> invalid_arg ("Engine.set_policy: " ^ e))
    rs

(* ------------------------------------------------------------------ *)
(* RCU-style publication *)

let generation t = t.generation

(** Build a complete successor policy generation off to the side — a
    fresh structure of the engine's kind/capacity holding [rs] — without
    touching the live one. Construction cost (allocation + entry stores)
    is charged to the calling CPU's machine, like the writer building the
    new table before publishing. *)
let build_instance t rs : Structure.instance =
  let inst = make_instance t.kernel t.active_kind ~capacity:t.capacity in
  List.iter
    (fun r ->
      match Structure.add inst r with
      | Ok () -> ()
      | Error e -> invalid_arg ("Engine.build_instance: " ^ e))
    rs;
  inst

(** Install a fully-built generation with a single pointer store and bump
    the epoch (invalidating every view's fast tiers). Readers switch
    atomically from the old table to the new one — there is no interval
    in which a partially-written entry is reachable. Returns the retired
    generation for the caller's grace-period bookkeeping ([Smp.Rcu]
    frees it only after every CPU passes a quiescent point). *)
let publish t inst ~default_allow : Structure.instance =
  if t.gen_ptr < 0 then t.gen_ptr <- Kernel.kmalloc t.kernel ~size:8;
  let old = t.instance in
  t.instance <- inst;
  t.default_allow <- default_allow;
  t.generation <- t.generation + 1;
  bump_epoch t;
  (* the publish itself: one release store of the table pointer *)
  Machine.Model.store (Kernel.machine t.kernel) t.gen_ptr 8;
  lifecycle t Trace.Policy_publish ~info:t.generation;
  old

(* ------------------------------------------------------------------ *)
(* checks *)

(** Host-side reference verdict: the exact first-match walk over the
    live generation, with no simulated cost. Used by paranoid mode and
    the SMP stale-allow assertions to cross-check fast-tier answers
    against the policy as currently published. *)
let reference_allows t ~addr ~size ~flags =
  let rec go = function
    | [] -> t.default_allow
    | (r : Region.t) :: rest ->
      if Region.contains r ~addr ~size then Region.permits r ~flags
      else go rest
  in
  go (Structure.regions t.instance)

(** Enable/disable paranoid cross-checking of inline-cache allows (a
    host-side comparison — zero simulated cycles, so cycle goldens are
    unaffected). Mismatches count in {!stale_allows}. *)
let set_verify t b = t.verify <- b

let stale_allows t = List.fold_left (fun a v -> a + v.v_stale) 0 t.views

(* Decision-event emission; a single match when no sink is attached. *)
let emit_guard t ~site ~addr ~size ~flags ~allowed ~fast ~scanned ~region_base
    =
  match t.cur.v_trace with
  | None -> ()
  | Some tr ->
    Trace.on_guard tr ~site ~addr ~size ~flags ~allowed ~fast ~scanned
      ~region_base

(** The permissions check at the heart of [carat_guard]. Charges the
    guard-body prologue plus whatever the structure walk costs. [site] is
    the static guard-site id for observability attribution (-1 = not a
    guard site). *)
let check_sited t ~site ~addr ~size ~flags : verdict =
  let machine = Kernel.machine t.kernel in
  let st = t.cur.v_stats in
  (* prologue: argument marshalling, flag mask, bounds set-up *)
  Machine.Model.retire machine 4;
  let out = Structure.lookup t.instance ~addr ~size in
  st.checks <- st.checks + 1;
  st.entries_scanned <- st.entries_scanned + out.Structure.scanned;
  match out.Structure.matched with
  | Some r ->
    Machine.Model.retire machine 2;
    let ok = Region.permits r ~flags in
    Machine.Model.branch machine
      ~pc:t.perm_pc.(r.Region.prot land 3)
      ~taken:ok;
    emit_guard t ~site ~addr ~size ~flags ~allowed:ok ~fast:false
      ~scanned:out.Structure.scanned ~region_base:r.Region.base;
    if ok then begin
      st.allowed <- st.allowed + 1;
      (* paranoid cross-check (host-side, free when off): a shadow-tier
         allow must agree with the first-match walk over the region
         mirror — a corrupt slot's synthetic region would not *)
      if t.verify && not (reference_allows t ~addr ~size ~flags) then
        t.cur.v_stale <- t.cur.v_stale + 1;
      Allowed (Some r)
    end
    else begin
      st.denied <- st.denied + 1;
      Denied (Some r)
    end
  | None ->
    emit_guard t ~site ~addr ~size ~flags ~allowed:t.default_allow ~fast:false
      ~scanned:out.Structure.scanned ~region_base:(-1);
    if t.default_allow then begin
      st.allowed <- st.allowed + 1;
      Allowed None
    end
    else begin
      st.denied <- st.denied + 1;
      Denied None
    end

let check t ~addr ~size ~flags : verdict = check_sited t ~site:(-1) ~addr ~size ~flags

(* ------------------------------------------------------------------ *)
(* site-indexed inline-cache fast path *)

(** Allocate the inline-cache arrays for the default view (idempotent).
    Off by default so the paper's evaluated configuration — and its
    simulated-cycle figures — are untouched unless a run opts in. *)
let enable_site_cache t =
  match t.default_view.v_site_cache with
  | Some _ -> ()
  | None -> t.default_view.v_site_cache <- Some (alloc_site_cache t.kernel)

let site_cache_enabled t = t.default_view.v_site_cache <> None

(** Region that matched but lacked permission on the current view's most
    recent [check_fast] denial ([None] = nothing matched under
    default-deny). *)
let last_deny t = t.cur.v_last_deny

(* The page's uniform-permission classification iff it holds for every
   possible in-page byte range: every region either fully contains or is
   disjoint from the page, making the first full container (table order)
   the first-match answer for any in-page range. Partial overlap -> None
   (uncacheable). Returns [(prot, depth, rbase)]: the protection bits,
   the tier-invariant scan depth (how many entries the exact linear-order
   walk examines before answering — the match's 1-based position, or the
   region count when nothing matches), and the matched region's base (-1
   when uncovered). Uncovered pages get the default encoded as protection
   bits; flags = 0 never uses the cache (see [check_fast]), which keeps
   the "no region matched" deny-on-default exact. *)
let page_uniform_prot t page =
  let lo = page lsl Shadow_table.page_bits in
  let hi = lo + Shadow_table.page_size in
  let rec go idx first_full = function
    | [] -> (
      match first_full with
      | Some ((r : Region.t), at) -> Some (r.Region.prot, at + 1, r.Region.base)
      | None ->
        let depth = Structure.count t.instance in
        if t.default_allow then Some (Region.prot_rw, depth, -1)
        else Some (0, depth, -1))
    | (r : Region.t) :: rest ->
      let rlim = Region.limit r in
      if r.Region.base < hi && lo < rlim then
        if r.Region.base <= lo && hi <= rlim then
          go (idx + 1)
            (match first_full with Some _ -> first_full | None -> Some (r, idx))
            rest
        else None
      else go (idx + 1) first_full rest
  in
  go 0 None (Structure.regions t.instance)

(* Exact walk on behalf of [check_fast]: full cost, full diagnostics. *)
let check_slow t ~site ~addr ~size ~flags =
  match check_sited t ~site ~addr ~size ~flags with
  | Allowed _ ->
    t.cur.v_last_deny <- None;
    true
  | Denied m ->
    t.cur.v_last_deny <- m;
    false

let fill_site sc t ~i ~page =
  match page_uniform_prot t page with
  | None -> () (* straddling page: every access re-walks, by design *)
  | Some (prot, depth, rbase) ->
    sc.sc_epoch.(i) <- t.epoch;
    sc.sc_page.(i) <- page;
    sc.sc_prot.(i) <- prot;
    sc.sc_depth.(i) <- depth;
    sc.sc_rbase.(i) <- rbase;
    sc.sc_canary.(i) <- canary_value i;
    let machine = Kernel.machine t.kernel in
    (* classification arithmetic + the tag store; the walk itself was
       already charged by the exact lookup, like a TLB miss's page walk *)
    Machine.Model.retire machine (2 * max 1 (Structure.count t.instance));
    Machine.Model.store machine (sc.sc_vaddr + (i * 16)) 8

(** Boolean fast-path check: allocation-free on an inline-cache hit, and
    decision-identical to {!check} always (misses and mismatches defer to
    it). [site] is the static guard-site id (-1 = unknown site, e.g. a
    legacy 3-argument guard call: always the exact walk). On denial the
    matching-region diagnostic is available from {!last_deny}. *)
let check_fast t ~site ~addr ~size ~flags : bool =
  let cv = t.cur in
  match cv.v_site_cache with
  | Some sc when t.ic_on && site >= 0 && addr >= 0 && flags <> 0 ->
    let machine = Kernel.machine t.kernel in
    (* same prologue the exact path charges *)
    Machine.Model.retire machine 4;
    let i = site land (site_cache_size - 1) in
    (* one probe of the site's slot (hot after first use) + validation *)
    Machine.Model.load machine (sc.sc_vaddr + (i * 16)) 8;
    Machine.Model.retire machine 2;
    let page = addr lsr Shadow_table.page_bits in
    let hit =
      sc.sc_epoch.(i) = t.epoch
      && sc.sc_page.(i) = page
      && (addr + size - 1) lsr Shadow_table.page_bits = page
    in
    Machine.Model.branch machine ~pc:sc.sc_pcs.(i) ~taken:hit;
    if hit then
      if flags land sc.sc_prot.(i) = flags then begin
        cv.v_stats.checks <- cv.v_stats.checks + 1;
        cv.v_stats.allowed <- cv.v_stats.allowed + 1;
        (* credit the scan depth the exact walk would have recorded, so
           decision stats do not depend on which tier answered *)
        cv.v_stats.entries_scanned <-
          cv.v_stats.entries_scanned + sc.sc_depth.(i);
        (* an allow supersedes any earlier denial diagnostic, exactly as
           the exact walk's Allowed branch does *)
        cv.v_last_deny <- None;
        cv.v_tier.ic_hits <- cv.v_tier.ic_hits + 1;
        if t.verify && not (reference_allows t ~addr ~size ~flags) then
          cv.v_stale <- cv.v_stale + 1;
        (match cv.v_trace with
        | None -> ()
        | Some tr ->
          Trace.on_fast_hit tr ~site;
          Trace.on_guard tr ~site ~addr ~size ~flags ~allowed:true ~fast:true
            ~scanned:sc.sc_depth.(i) ~region_base:sc.sc_rbase.(i));
        true
      end
      else begin
        (* cached fact says deny (or an exotic flag combination): take the
           exact walk for the authoritative verdict and diagnostics *)
        cv.v_tier.ic_misses <- cv.v_tier.ic_misses + 1;
        (match cv.v_trace with
        | None -> ()
        | Some tr -> Trace.on_fast_miss tr ~site);
        check_slow t ~site ~addr ~size ~flags
      end
    else begin
      cv.v_tier.ic_misses <- cv.v_tier.ic_misses + 1;
      (match cv.v_trace with
      | None -> ()
      | Some tr -> Trace.on_fast_miss tr ~site);
      let ok = check_slow t ~site ~addr ~size ~flags in
      if (addr + size - 1) lsr Shadow_table.page_bits = page then
        fill_site sc t ~i ~page;
      ok
    end
  | _ -> check_slow t ~site ~addr ~size ~flags

(* ------------------------------------------------------------------ *)
(* corruption injection (fault campaigns)

   These model a wild write from an ungoverned path (DMA, an unguarded
   module, a kernel bug) landing in a fast tier's metadata: they mutate
   the decode-side state the hot path actually consults, bypass the
   epoch/commit choke point, and charge no simulated cost — the damage
   is the environment's, not the victim module's, so the containment
   memory diff stays clean. *)

let site_slot site = site land (site_cache_size - 1)

(** Plant a stale-allow fact in [view]'s inline cache for [site]: the
    slot claims the current epoch, [page], and [prot] — so the very next
    sited check on that page is answered from the corrupt slot without
    any walk. [smash_canary] additionally clobbers the slot canary (the
    blunt corruption the cheap canary check catches; a consistent forgery
    leaves it intact and only the semantic audit catches it). Returns
    [false] when the view has no inline cache. *)
let corrupt_site_cache t view ~site ~page ~prot ~smash_canary =
  match view.v_site_cache with
  | None -> false
  | Some sc ->
    let i = site_slot site in
    sc.sc_epoch.(i) <- t.epoch;
    sc.sc_page.(i) <- page;
    sc.sc_prot.(i) <- prot;
    sc.sc_depth.(i) <- 1;
    sc.sc_rbase.(i) <- -1;
    if smash_canary then sc.sc_canary.(i) <- sc.sc_canary.(i) lxor 0xBAD;
    true

(** Corrupt the live shadow tier: the slot covering [page] is forced to
    a bogus uniform-[prot] fact. Returns [false] when the active
    structure has no shadow front. *)
let corrupt_shadow t ~page ~prot ~fix_checksum =
  match live_shadow t with
  | None -> false
  | Some s ->
    let region =
      Region.v ~tag:"corrupt" ~base:(page lsl Shadow_table.page_bits)
        ~len:Shadow_table.page_size ~prot ()
    in
    Shadow_table.corrupt_slot s ~page ~region ~fix_checksum;
    true

(** Corrupt the published policy instance itself: flip the protection
    bits of the region based at [base] in the exact table's decode
    mirror, making the authoritative-looking walk lie. Returns [false]
    when no such region exists or the structure keeps no linear table. *)
let corrupt_instance t ~base ~prot =
  match live_linear t with
  | None -> false
  | Some l -> Linear_table.corrupt_entry l ~base ~prot
