(** The policy engine: a region structure plus the permission-check logic
    and counters. One engine backs one policy module instance.

    Check semantics (§3.1): walk the structure for the first region
    containing the accessed byte range; if found, the access is allowed
    iff the region's protection flags include every requested flag; if no
    region matches, the default action applies. The paper's evaluated
    configuration is the 64-entry linear table with default deny. *)

type kind = Linear | Sorted | Splay | Rbtree | Bloom | Cached

let kind_to_string = function
  | Linear -> "linear"
  | Sorted -> "sorted"
  | Splay -> "splay"
  | Rbtree -> "rbtree"
  | Bloom -> "bloom+linear"
  | Cached -> "cached+linear"

let all_kinds = [ Linear; Sorted; Splay; Rbtree; Bloom; Cached ]

type stats = {
  mutable checks : int;
  mutable allowed : int;
  mutable denied : int;
  mutable entries_scanned : int;
}

type verdict =
  | Allowed of Region.t option
      (** matching region, or [None] under default-allow *)
  | Denied of Region.t option
      (** region that matched but lacked permissions, or [None] when
          nothing matched under default-deny *)

type t = {
  kernel : Kernel.t;
  instance : Structure.instance;
  mutable default_allow : bool;
  stats : stats;
}

let make_instance kernel kind ~capacity : Structure.instance =
  match kind with
  | Linear ->
    Structure.I ((module Linear_table), Linear_table.create kernel ~capacity)
  | Sorted ->
    Structure.I ((module Sorted_table), Sorted_table.create kernel ~capacity)
  | Splay ->
    Structure.I ((module Splay_tree), Splay_tree.create kernel ~capacity)
  | Rbtree ->
    Structure.I ((module Rb_tree), Rb_tree.create kernel ~capacity)
  | Bloom ->
    Structure.I ((module Bloom_front), Bloom_front.create kernel ~capacity)
  | Cached ->
    Structure.I ((module Lookup_cache), Lookup_cache.create kernel ~capacity)

let create ?(kind = Linear) ?(capacity = Linear_table.default_capacity)
    ?(default_allow = false) kernel =
  {
    kernel;
    instance = make_instance kernel kind ~capacity;
    default_allow;
    stats = { checks = 0; allowed = 0; denied = 0; entries_scanned = 0 };
  }

let add_region t r = Structure.add t.instance r
let remove_region t ~base = Structure.remove t.instance ~base
let clear t = Structure.clear t.instance
let count t = Structure.count t.instance
let regions t = Structure.regions t.instance
let stats t = t.stats
let structure_name t = Structure.name t.instance
let table_region t = Structure.table_region t.instance

let reset_stats t =
  t.stats.checks <- 0;
  t.stats.allowed <- 0;
  t.stats.denied <- 0;
  t.stats.entries_scanned <- 0

(** Load a whole policy (clearing the current one); errors abort. *)
let set_policy t rs =
  clear t;
  List.iter
    (fun r ->
      match add_region t r with
      | Ok () -> ()
      | Error e -> invalid_arg ("Engine.set_policy: " ^ e))
    rs

(** The permissions check at the heart of [carat_guard]. Charges the
    guard-body prologue plus whatever the structure walk costs. *)
let check t ~addr ~size ~flags : verdict =
  let machine = Kernel.machine t.kernel in
  (* prologue: argument marshalling, flag mask, bounds set-up *)
  Machine.Model.retire machine 4;
  let out = Structure.lookup t.instance ~addr ~size in
  t.stats.checks <- t.stats.checks + 1;
  t.stats.entries_scanned <- t.stats.entries_scanned + out.Structure.scanned;
  match out.Structure.matched with
  | Some r ->
    Machine.Model.retire machine 2;
    let ok = Region.permits r ~flags in
    Machine.Model.branch machine
      ~pc:(Hashtbl.hash ("perm", Region.prot_to_string r.Region.prot))
      ~taken:ok;
    if ok then begin
      t.stats.allowed <- t.stats.allowed + 1;
      Allowed (Some r)
    end
    else begin
      t.stats.denied <- t.stats.denied + 1;
      Denied (Some r)
    end
  | None ->
    if t.default_allow then begin
      t.stats.allowed <- t.stats.allowed + 1;
      Allowed None
    end
    else begin
      t.stats.denied <- t.stats.denied + 1;
      Denied None
    end
