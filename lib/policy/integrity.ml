(** Self-healing enforcement: integrity metadata over the derived guard
    tiers, the audit that checks them against the authoritative policy,
    and the degrade / rebuild / re-promote state machine.

    Threat model (MOAT/BULKHEAD's observation applied to ourselves): the
    enforcement machinery — shadow permission table, per-site inline
    caches, the RCU-published policy instance — is itself kernel memory a
    wild write can corrupt into *stale allows*. Every legitimate mutation
    funnels through {!Engine.bump_epoch}, where a commit hook re-snapshots
    the authoritative copy held here (region list + default action +
    digest). Out-of-band corruption bypasses that choke point, so the
    live tiers diverge from the authoritative copy and the next audit
    catches the divergence. (A corruption immediately followed by a
    legitimate mutation before any audit re-blesses the live state; the
    watchdog period bounds that window, and it is the same TOCTOU any
    snapshot-based integrity monitor accepts.)

    Tier trust lattice, top down:

    + compiled + inline caches (epoch-validated per-site slots, canaries)
    + shadow page table (per-slot checksums + semantic cross-check)
    + linear exact walk (digest tied back to the authoritative copy)

    On a mismatch the corrupt tier is *quarantined*: the inline caches
    are switched off and flushed, a corrupt shadow drops the engine to
    the linear interpreter fallback (a fresh instance built from the
    authoritative copy is published, so not a single check is served
    from the corrupt structure), and a corrupt instance is rebuilt from
    the authoritative copy immediately — there is no lower tier to fall
    to. Quarantined tiers are rebuilt and re-promoted after a cooldown,
    with bounded retries and exponential backoff; a tier that keeps
    failing re-audit is abandoned (left degraded) rather than flapping.
    Every transition emits [Tier_degraded]/[Tier_rebuilt] trace events
    and bumps the counters surfaced in /proc/carat. *)

type tier = Ic | Shadow_tier | Instance

let tier_code = function Ic -> 0 | Shadow_tier -> 1 | Instance -> 2

let tier_to_string = function
  | Ic -> "inline-cache"
  | Shadow_tier -> "shadow"
  | Instance -> "instance"

type state = Active | Quarantined | Abandoned

let state_to_string = function
  | Active -> "active"
  | Quarantined -> "quarantined"
  | Abandoned -> "abandoned"

(** Per-tier health cell. *)
type cell = {
  c_tier : tier;
  mutable c_state : state;
  mutable c_retries : int;  (** consecutive failed rebuild attempts *)
  mutable c_cooldown : int;  (** audits to wait before the next attempt *)
  mutable c_detected : int;
  mutable c_degradations : int;
  mutable c_rebuilds : int;
}

let make_cell tier =
  {
    c_tier = tier;
    c_state = Active;
    c_retries = 0;
    c_cooldown = 0;
    c_detected = 0;
    c_degradations = 0;
    c_rebuilds = 0;
  }

type config = {
  cooldown_audits : int;
      (** clean audits a quarantined tier waits before re-promotion *)
  max_retries : int;  (** failed rebuilds before the tier is abandoned *)
}

let default_config = { cooldown_audits = 2; max_retries = 3 }

type t = {
  engine : Engine.t;
  config : config;
  (* the authoritative copy, refreshed on every legitimate mutation *)
  mutable auth_regions : Region.t list;
  mutable auth_default : bool;
  mutable auth_digest : int;
  mutable route : Region.t list -> bool -> unit;
      (** rebuild publisher: installs a fresh instance built from the
          authoritative copy. The policy module points this at its
          mutation router so SMP runs rebuild through the RCU publish
          path; the default publishes directly (single-CPU). *)
  ic : cell;
  shadow : cell;
  inst : cell;
  (* counters (also surfaced via ioctl + /proc/carat) *)
  mutable audits : int;
  mutable detections : int;
  mutable audit_cost_cycles : int;
      (** simulated cycles charged by audits, summed — the bench's
          detection-latency denominator *)
}

(* Folded per-region so every field of every region contributes —
   [Hashtbl.hash] alone bounds its structural traversal and would let a
   flip deep in a long region list slip through undigested. *)
let digest_of rs default_allow =
  List.fold_left
    (fun acc (r : Region.t) ->
      Hashtbl.hash (acc, r.Region.base, r.Region.len, r.Region.prot))
    (Hashtbl.hash default_allow)
    rs

(* The commit hook: re-snapshot the authoritative copy from the live
   engine. Runs after every epoch bump, i.e. after every legitimate
   mutation (including our own rebuild publishes). *)
let refresh t =
  t.auth_regions <- Engine.regions t.engine;
  t.auth_default <- Engine.default_allow t.engine;
  t.auth_digest <- digest_of t.auth_regions t.auth_default

let create ?(config = default_config) engine =
  let t =
    {
      engine;
      config;
      auth_regions = [];
      auth_default = false;
      auth_digest = 0;
      route =
        (fun rs d ->
          let inst = Engine.build_instance engine rs in
          ignore (Engine.publish engine inst ~default_allow:d));
      ic = make_cell Ic;
      shadow = make_cell Shadow_tier;
      inst = make_cell Instance;
      audits = 0;
      detections = 0;
      audit_cost_cycles = 0;
    }
  in
  refresh t;
  Engine.set_on_mutate engine (Some (fun () -> refresh t));
  t

let set_route t f = t.route <- f
let engine t = t.engine

(* ------------------------------------------------------------------ *)
(* per-tier audits *)

(* Page classification against the *authoritative* region list —
   the same semantics as {!Shadow_table.classify_page}, but over the
   trusted snapshot instead of the (possibly corrupt) live table. *)
let classify_auth t page =
  let lo = page lsl Shadow_table.page_bits in
  let hi = lo + Shadow_table.page_size in
  let rec go idx first_full = function
    | [] -> (
      match first_full with
      | Some (r, at) -> (Shadow_table.Uniform r, at + 1)
      | None -> (Shadow_table.No_region, List.length t.auth_regions))
    | (r : Region.t) :: rest ->
      let rlim = Region.limit r in
      if r.Region.base < hi && lo < rlim then
        if r.Region.base <= lo && hi <= rlim then
          go (idx + 1)
            (match first_full with Some _ -> first_full | None -> Some (r, idx))
            rest
        else (Shadow_table.Straddle, 0)
      else go (idx + 1) first_full rest
  in
  go 0 None t.auth_regions

(* The uniform-protection fact an inline-cache slot may legitimately
   hold for [page], derived from the authoritative copy (mirror of
   {!Engine.page_uniform_prot}). *)
let auth_page_prot t page =
  match classify_auth t page with
  | Shadow_table.Uniform r, depth -> Some (r.Region.prot, depth, r.Region.base)
  | Shadow_table.No_region, depth ->
    if t.auth_default then Some (Region.prot_rw, depth, -1) else Some (0, depth, -1)
  | (Shadow_table.Straddle | Shadow_table.Invalid), _ -> None

let charge t n =
  let machine = Kernel.machine t.engine.Engine.kernel in
  Machine.Model.retire machine n

(* Digest of the live instance vs the authoritative copy. *)
let audit_instance t =
  let live =
    digest_of (Engine.regions t.engine) (Engine.default_allow t.engine)
  in
  charge t (2 * max 1 (List.length t.auth_regions));
  live <> t.auth_digest

(* Shadow slots: checksum, then semantic cross-check against the
   authoritative classification. Returns the number of corrupt slots. *)
let audit_shadow t =
  match Engine.live_shadow t.engine with
  | None -> 0
  | Some s ->
    let bad = ref 0 in
    for i = 0 to Shadow_table.shadow_entries - 1 do
      if Shadow_table.slot_live s i then begin
        charge t 2;
        let sum_ok = s.Shadow_table.sums.(i) = Shadow_table.slot_sum s i in
        let page = s.Shadow_table.tags.(i) in
        let cls, depth = classify_auth t page in
        let sem_ok =
          Shadow_table.entry_code s.Shadow_table.state.(i)
            = Shadow_table.entry_code cls
          && (s.Shadow_table.depths.(i) = depth
             || s.Shadow_table.state.(i) = Shadow_table.Straddle)
        in
        if not (sum_ok && sem_ok) then incr bad
      end
    done;
    !bad

(* Inline-cache slots across every view: canary, then semantic
   cross-check of the cached (prot, depth, rbase) fact. Only slots
   stamped with the current epoch can answer, so only they are
   audited. *)
let audit_ic t =
  let e = t.engine in
  let bad = ref 0 in
  List.iter
    (fun v ->
      match v.Engine.v_site_cache with
      | None -> ()
      | Some sc ->
        for i = 0 to Engine.site_cache_size - 1 do
          if sc.Engine.sc_epoch.(i) = Engine.epoch e then begin
            charge t 2;
            let canary_ok = sc.Engine.sc_canary.(i) = Engine.canary_value i in
            let sem_ok =
              match auth_page_prot t sc.Engine.sc_page.(i) with
              | None -> false (* straddling pages are never cached *)
              | Some (prot, depth, rbase) ->
                sc.Engine.sc_prot.(i) = prot
                && sc.Engine.sc_depth.(i) = depth
                && sc.Engine.sc_rbase.(i) = rbase
            in
            if not (canary_ok && sem_ok) then incr bad
          end
        done)
    (Engine.views e);
  !bad

(* ------------------------------------------------------------------ *)
(* degrade / rebuild / re-promote *)

let emit t kind tier = Engine.lifecycle t.engine kind ~info:(tier_code tier)

(* The inline caches may serve only when both the ic tier and the shadow
   tier are trusted (a shadow quarantine widens the blast radius
   conservatively: everything derived is suspect). *)
let apply_ic_switch t =
  Engine.set_ic_enabled t.engine
    (t.ic.c_state = Active && t.shadow.c_state = Active)

let flush_all_ics t =
  List.iter Engine.flush_view_site_cache (Engine.views t.engine)

(* Publish a fresh instance of the engine's *active* kind built from the
   authoritative copy. Every degraded/rebuilt service change goes through
   here, so no check is ever served from a structure that was found
   corrupt. *)
let publish_auth t = t.route t.auth_regions t.auth_default

let degrade t (c : cell) =
  c.c_detected <- c.c_detected + 1;
  t.detections <- t.detections + 1;
  if c.c_state = Active then begin
    c.c_state <- Quarantined;
    c.c_retries <- 0;
    c.c_cooldown <- t.config.cooldown_audits;
    c.c_degradations <- c.c_degradations + 1;
    emit t Trace.Tier_degraded c.c_tier;
    match c.c_tier with
    | Ic ->
      apply_ic_switch t;
      flush_all_ics t
    | Shadow_tier ->
      (* drop to the linear interpreter fallback: publish a clean linear
         instance from the authoritative copy; the corrupt shadow is out
         of service before the next check *)
      Engine.set_active_kind t.engine Engine.Linear;
      apply_ic_switch t;
      publish_auth t
    | Instance ->
      (* no lower tier: rebuild from the authoritative copy on the spot *)
      publish_auth t
  end

(* A quarantined tier's audit tick: count the cooldown down, then attempt
   the rebuild; verify with a fresh audit of that tier; back off
   exponentially on failure, abandon after max_retries. *)
let attempt_repromote t (c : cell) ~(reaudit : unit -> bool) ~(rebuild : unit -> unit) =
  if c.c_state = Quarantined then begin
    c.c_cooldown <- c.c_cooldown - 1;
    if c.c_cooldown <= 0 then begin
      rebuild ();
      if reaudit () then begin
        c.c_state <- Active;
        c.c_retries <- 0;
        c.c_rebuilds <- c.c_rebuilds + 1;
        apply_ic_switch t;
        emit t Trace.Tier_rebuilt c.c_tier
      end
      else begin
        c.c_retries <- c.c_retries + 1;
        if c.c_retries >= t.config.max_retries then begin
          c.c_state <- Abandoned;
          apply_ic_switch t
        end
        else
          c.c_cooldown <-
            t.config.cooldown_audits * (1 lsl min c.c_retries 4)
      end
    end
  end

(** One audit cycle: check every tier against the authoritative copy,
    quarantine fresh corruption, tick quarantined tiers toward rebuild.
    Returns the number of corrupt tiers detected this cycle. The
    watchdog drives this periodically; the audit ioctl and
    [policy_manager audit] call it directly. *)
let audit t =
  t.audits <- t.audits + 1;
  let machine = Kernel.machine t.engine.Engine.kernel in
  let before = Machine.Model.cycles machine in
  charge t 20 (* audit entry: walk set-up, counter loads *);
  let found = ref 0 in
  (* instance first: it is the baseline the derived tiers are compared
     against, so heal it before judging them. Degrading republishes from
     the authoritative copy on the spot; the quarantine still rides the
     cooldown before the tier is trusted as fully healthy again *)
  (match t.inst.c_state with
  | Active ->
    if audit_instance t then begin
      incr found;
      degrade t t.inst
    end
  | Quarantined ->
    attempt_repromote t t.inst
      ~reaudit:(fun () -> not (audit_instance t))
      ~rebuild:(fun () -> publish_auth t)
  | Abandoned -> ());
  (* shadow tier *)
  (match t.shadow.c_state with
  | Active ->
    let bad = audit_shadow t in
    if bad > 0 then begin
      incr found;
      degrade t t.shadow
    end
  | Quarantined ->
    attempt_repromote t t.shadow
      ~reaudit:(fun () -> audit_shadow t = 0)
      ~rebuild:(fun () ->
        Engine.set_active_kind t.engine t.engine.Engine.kind;
        publish_auth t)
  | Abandoned -> ());
  (* inline caches *)
  (match t.ic.c_state with
  | Active ->
    if Engine.ic_enabled t.engine && audit_ic t > 0 then begin
      incr found;
      degrade t t.ic
    end
  | Quarantined ->
    attempt_repromote t t.ic
      ~reaudit:(fun () -> audit_ic t = 0)
      ~rebuild:(fun () -> flush_all_ics t)
  | Abandoned -> ());
  t.audit_cost_cycles <-
    t.audit_cost_cycles + (Machine.Model.cycles machine - before);
  !found

(* ------------------------------------------------------------------ *)
(* observability *)

(** Effective tier level the engine is serving from: 2 = full fast path
    (shadow + inline caches), 1 = shadow only (caches quarantined),
    0 = linear fallback. *)
let tier_level t =
  if Engine.active_kind t.engine <> t.engine.Engine.kind then 0
  else if not (Engine.ic_enabled t.engine) then 1
  else 2

let healthy t =
  t.ic.c_state = Active && t.shadow.c_state = Active
  && t.inst.c_state = Active

let cells t = [ t.ic; t.shadow; t.inst ]
let audits t = t.audits
let detections t = t.detections
let audit_cost_cycles t = t.audit_cost_cycles
let degradations t =
  List.fold_left (fun a c -> a + c.c_degradations) 0 (cells t)
let rebuilds t = List.fold_left (fun a c -> a + c.c_rebuilds) 0 (cells t)
let abandoned t =
  List.length (List.filter (fun c -> c.c_state = Abandoned) (cells t))

let render t =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "carat_selfheal: audits %d detections %d degradations %d rebuilds %d \
     abandoned %d tier_level %d audit_cycles %d\n"
    (audits t) (detections t) (degradations t) (rebuilds t) (abandoned t)
    (tier_level t) (audit_cost_cycles t);
  List.iter
    (fun c ->
      Printf.bprintf b
        "  %-12s %-11s detected %d degradations %d rebuilds %d retries %d\n"
        (tier_to_string c.c_tier)
        (state_to_string c.c_state)
        c.c_detected c.c_degradations c.c_rebuilds c.c_retries)
    (cells t);
  Buffer.contents b
