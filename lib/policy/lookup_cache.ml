(** A small most-recently-matched cache in front of the linear table — the
    structure CARAT CAKE uses ("a simple cache over the region data
    structure", §4.2). The cached entries are exact regions, so unlike the
    Bloom front-end this accelerator is sound: a cache hit re-validates
    containment against the real region. *)

type slot = { mutable region : Region.t option; vaddr : int }

type t = {
  kernel : Kernel.t;
  inner : Linear_table.t;
  slots : slot array;
  mutable next_fill : int;
  mutable hits : int;
  mutable misses : int;
}

let name = "cached+linear"
let default_ways = 2

let create kernel ~capacity =
  let slots =
    Array.init default_ways (fun _ ->
        { region = None; vaddr = Kernel.kmalloc kernel ~size:24 })
  in
  {
    kernel;
    inner = Linear_table.create kernel ~capacity;
    slots;
    next_fill = 0;
    hits = 0;
    misses = 0;
  }

let invalidate t = Array.iter (fun s -> s.region <- None) t.slots

let add t r =
  invalidate t;
  Linear_table.add t.inner r

let remove t ~base =
  invalidate t;
  Linear_table.remove t.inner ~base

let clear t =
  invalidate t;
  Linear_table.clear t.inner

let count t = Linear_table.count t.inner
let regions t = Linear_table.regions t.inner

let lookup t ~addr ~size : Structure.outcome =
  let machine = Kernel.machine t.kernel in
  let rec probe i =
    if i >= Array.length t.slots then None
    else begin
      let s = t.slots.(i) in
      ignore (Kernel.read t.kernel ~addr:s.vaddr ~size:8);
      Machine.Model.retire machine 2;
      let hit =
        match s.region with
        | Some r -> Region.contains r ~addr ~size
        | None -> false
      in
      Machine.Model.branch machine
        ~pc:(Hashtbl.hash ("rcache", s.vaddr))
        ~taken:hit;
      if hit then s.region else probe (i + 1)
    end
  in
  match probe 0 with
  | Some r ->
    t.hits <- t.hits + 1;
    { Structure.matched = Some r; scanned = 1 }
  | None ->
    t.misses <- t.misses + 1;
    let out = Linear_table.lookup t.inner ~addr ~size in
    (match out.Structure.matched with
    | Some r ->
      let s = t.slots.(t.next_fill) in
      s.region <- Some r;
      Kernel.write t.kernel ~addr:s.vaddr ~size:8 r.Region.base;
      t.next_fill <- (t.next_fill + 1) mod Array.length t.slots
    | None -> ());
    out

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let table_region t = Linear_table.table_region t.inner

(* no integrity-auditable internals beyond the policy itself *)
let repr _t = Structure.Opaque
