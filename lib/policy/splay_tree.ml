(** Splay-tree region structure — the paper's suggested popularity-based
    structure (§4.2): "with a large enough number of regions, a
    popularity-based data structure such as a splay tree ... might be able
    to do better than a logarithmic search in the common case".

    Nodes live in kernel memory (40 bytes: base, len, prot, left, right),
    so a lookup is genuine pointer chasing through the cache model; the
    splay step rewrites parent pointers (stores). A hot region settles at
    the root and costs one probe. Overlapping regions are rejected, same
    as the sorted table. *)

type node = {
  mutable region : Region.t;
  mutable left : node option;
  mutable right : node option;
  vaddr : int;
}

type t = {
  kernel : Kernel.t;
  mutable root : node option;
  mutable n : int;
  capacity : int;
}

let name = "splay"
let node_size = 40

let create kernel ~capacity = { kernel; root = None; n = 0; capacity }

let alloc_node t r =
  let vaddr = Kernel.kmalloc t.kernel ~size:node_size in
  { region = r; left = None; right = None; vaddr }

let touch_node t (n : node) =
  ignore (Kernel.read t.kernel ~addr:n.vaddr ~size:8);
  Machine.Model.retire (Kernel.machine t.kernel) 2

let write_node t (n : node) =
  Kernel.write t.kernel ~addr:(n.vaddr + 24) ~size:8
    (match n.left with Some l -> l.vaddr | None -> 0);
  Kernel.write t.kernel ~addr:(n.vaddr + 32) ~size:8
    (match n.right with Some r -> r.vaddr | None -> 0)

(** Top-down splay by key (region base); returns the new root. Also
    charges the pointer-chasing and restructuring costs. *)
let splay t key (root : node option) : node option =
  match root with
  | None -> None
  | Some root ->
    (* simple recursive bottom-up splay; costs charged per visited node *)
    let rec go (x : node) : node =
      touch_node t x;
      let machine = Kernel.machine t.kernel in
      Machine.Model.branch machine
        ~pc:(Hashtbl.hash ("splay", x.vaddr land 0xff))
        ~taken:(key < x.region.Region.base);
      if key < x.region.Region.base then
        match x.left with
        | None -> x
        | Some l ->
          let l = go l in
          (* rotate right *)
          x.left <- l.right;
          l.right <- Some x;
          write_node t x;
          write_node t l;
          l
      else if key > x.region.Region.base then
        match x.right with
        | None -> x
        | Some r ->
          let r = go r in
          (* rotate left *)
          x.right <- r.left;
          r.left <- Some x;
          write_node t x;
          write_node t r;
          r
      else x
    in
    Some (go root)

let rec insert_no_splay (t : t) (cur : node option) (n : node) :
    (node, string) result =
  match cur with
  | None -> Ok n
  | Some c ->
    if Region.overlaps c.region n.region then
      Error
        (Printf.sprintf "splay tree cannot hold overlapping regions (%s vs %s)"
           (Region.to_string n.region)
           (Region.to_string c.region))
    else if n.region.Region.base < c.region.Region.base then (
      match insert_no_splay t c.left n with
      | Ok l ->
        c.left <- Some l;
        write_node t c;
        Ok c
      | Error _ as e -> e)
    else (
      match insert_no_splay t c.right n with
      | Ok r ->
        c.right <- Some r;
        write_node t c;
        Ok c
      | Error _ as e -> e)

let add t r =
  if t.n >= t.capacity then Error (Structure.capacity_error t.capacity)
  else begin
    let n = alloc_node t r in
    match insert_no_splay t t.root n with
    | Ok root ->
      t.root <- Some root;
      t.n <- t.n + 1;
      Ok ()
    | Error _ as e -> e
  end

let rec regions_of = function
  | None -> []
  | Some n -> regions_of n.left @ [ n.region ] @ regions_of n.right

let regions t = regions_of t.root
let count t = t.n

let clear t =
  t.root <- None;
  t.n <- 0

let remove t ~base =
  (* rebuild without the FIRST matching node (canonical duplicate-base
     semantics across all structures); removal is rare (ioctl path), so
     the simple O(n) approach is fine and costs are not modelled *)
  let rs = regions t in
  if List.exists (fun r -> r.Region.base = base) rs then begin
    clear t;
    let removed = ref false in
    List.iter
      (fun r ->
        if (not !removed) && r.Region.base = base then removed := true
        else
          match add t r with
          | Ok () -> ()
          | Error e -> invalid_arg ("Splay_tree.remove rebuild: " ^ e))
      rs;
    true
  end
  else false

let lookup t ~addr ~size : Structure.outcome =
  (* find the containing region (regions are disjoint here), stopping as
     soon as it is found, then splay it to the root so hot regions answer
     in one probe *)
  let scanned = ref 0 in
  let rec descend (cur : node option) (best : node option) =
    match cur with
    | None -> best
    | Some c ->
      incr scanned;
      touch_node t c;
      if Region.contains c.region ~addr ~size then Some c
      else if addr < c.region.Region.base then descend c.left best
      else descend c.right (Some c)
  in
  let best = descend t.root None in
  let key =
    match best with Some n -> n.region.Region.base | None -> addr
  in
  t.root <- splay t key t.root;
  match best with
  | Some n when Region.contains n.region ~addr ~size ->
    { Structure.matched = Some n.region; scanned = !scanned }
  | _ -> { Structure.matched = None; scanned = !scanned }

(* nodes are individual kmalloc'd allocations; no contiguous table *)
let table_region _t = None

(* no integrity-auditable internals beyond the policy itself *)
let repr _t = Structure.Opaque
