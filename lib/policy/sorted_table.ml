(** Sorted region table with binary search — the paper's first suggested
    O(log n) upgrade (§4.2): "simply sort the regions in the policy in
    order, and then do a binary search over the table instead of a linear
    scan".

    The trade-off the paper names (§3.1) is enforced here: overlapping
    regions cannot be represented, so [add] rejects them. Binary-search
    probes have data-dependent branch outcomes, which is why this loses
    to the linear scan at small n on the simulated machines too. *)

let entry_size = 24

type t = {
  kernel : Kernel.t;
  base_vaddr : int;
  capacity : int;
  mutable entries : Region.t array;
  mutable n : int;
}

let name = "sorted"

let create kernel ~capacity =
  let base_vaddr = Kernel.kmalloc kernel ~size:(capacity * entry_size) in
  {
    kernel;
    base_vaddr;
    capacity;
    entries = Array.make capacity (Region.v ~base:0 ~len:1 ~prot:0 ());
    n = 0;
  }

let entry_addr t i = t.base_vaddr + (i * entry_size)

let write_entry t i (r : Region.t) =
  let a = entry_addr t i in
  Kernel.write t.kernel ~addr:a ~size:8 r.Region.base;
  Kernel.write t.kernel ~addr:(a + 8) ~size:8 r.Region.len;
  Kernel.write t.kernel ~addr:(a + 16) ~size:8 r.Region.prot

let add t (r : Region.t) =
  if t.n >= t.capacity then Error (Structure.capacity_error t.capacity)
  else begin
    let overlap = ref None in
    for i = 0 to t.n - 1 do
      if Region.overlaps t.entries.(i) r then overlap := Some t.entries.(i)
    done;
    match !overlap with
    | Some other ->
      Error
        (Printf.sprintf "sorted table cannot hold overlapping regions (%s vs %s)"
           (Region.to_string r) (Region.to_string other))
    | None ->
      (* insertion sort by base *)
      let pos = ref t.n in
      while !pos > 0 && t.entries.(!pos - 1).Region.base > r.Region.base do
        t.entries.(!pos) <- t.entries.(!pos - 1);
        write_entry t !pos t.entries.(!pos);
        decr pos
      done;
      t.entries.(!pos) <- r;
      write_entry t !pos r;
      t.n <- t.n + 1;
      Ok ()
  end

(* see Linear_table.hole: parked in vacated slots so kernel memory stays
   byte-identical to the mirror after a removal *)
let hole = Region.v ~base:0 ~len:1 ~prot:0 ()

let remove t ~base =
  let rec find i =
    if i >= t.n then None
    else if t.entries.(i).Region.base = base then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some i ->
    for j = i to t.n - 2 do
      t.entries.(j) <- t.entries.(j + 1);
      write_entry t j t.entries.(j)
    done;
    t.n <- t.n - 1;
    t.entries.(t.n) <- hole;
    write_entry t t.n hole;
    true

let clear t = t.n <- 0
let count t = t.n
let regions t = Array.to_list (Array.sub t.entries 0 t.n)

let lookup t ~addr ~size : Structure.outcome =
  let machine = Kernel.machine t.kernel in
  (* binary search for the rightmost entry with base <= addr *)
  let probes = ref 0 in
  let lo = ref 0 and hi = ref (t.n - 1) and best = ref (-1) in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    incr probes;
    ignore (Kernel.read t.kernel ~addr:(entry_addr t mid) ~size:8);
    Machine.Model.retire machine 3;
    let le = t.entries.(mid).Region.base <= addr in
    (* data-dependent direction: poison for the predictor *)
    Machine.Model.branch machine
      ~pc:(Hashtbl.hash ("sorted", t.base_vaddr, !probes))
      ~taken:le;
    if le then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  if !best < 0 then { Structure.matched = None; scanned = !probes }
  else begin
    let r = t.entries.(!best) in
    Machine.Model.retire machine 2;
    if Region.contains r ~addr ~size then
      { Structure.matched = Some r; scanned = !probes }
    else { Structure.matched = None; scanned = !probes }
  end

let table_region t = Some (t.base_vaddr, t.capacity * entry_size)

(* no integrity-auditable internals beyond the policy itself *)
let repr _t = Structure.Opaque
