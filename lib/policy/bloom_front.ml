(** AMQ (Bloom-filter) front-end over a linear table — the paper's §3.1
    suggestion: "probabilistic structures, like any of a variety of
    AMQ-filters, may very well improve average performance, as we expect
    modules to be compliant with policies for nearly every access,
    significantly reducing the number of policy table lookups needed".

    The filter caches page-granular allow decisions: a key is
    (page, flags). A filter hit short-circuits the table walk; a miss
    falls through to the exact linear scan, and an allowed result inserts
    the key. The well-known caveat — false positives can admit an access
    the table would deny — is inherent to the approach the paper floats;
    [fp_possible] exposes the risk and the ablation benchmark measures
    the speed side of the trade. Clearing the policy resets the filter
    (removals would otherwise leave stale positives). *)

type t = {
  kernel : Kernel.t;
  inner : Linear_table.t;
  bits_vaddr : int;
  bits_size : int;  (** bytes *)
  k : int;  (** probes per query *)
  mutable bits : Bytes.t;  (** mirror of kernel memory *)
  mutable inserted : int;
}

let name = "bloom+linear"
let filter_bytes = 4096
let probes = 3

let create kernel ~capacity =
  {
    kernel;
    inner = Linear_table.create kernel ~capacity;
    bits_vaddr = Kernel.kmalloc kernel ~size:filter_bytes;
    bits_size = filter_bytes;
    k = probes;
    bits = Bytes.make filter_bytes '\000';
    inserted = 0;
  }

let page_of addr = addr lsr 12

let hash_i t i ~page ~flags =
  let h = Hashtbl.hash (page, flags, i * 0x9e3779b9) in
  h mod (t.bits_size * 8)

let bit_get t idx = Char.code (Bytes.get t.bits (idx lsr 3)) land (1 lsl (idx land 7)) <> 0

let bit_set t idx =
  let b = Char.code (Bytes.get t.bits (idx lsr 3)) in
  Bytes.set t.bits (idx lsr 3) (Char.chr (b lor (1 lsl (idx land 7))))

(** Probe the filter for (page, flags), charging one scattered load per
    hash; true = all bits set (possibly-allowed). *)
let filter_query t ~page ~flags =
  let machine = Kernel.machine t.kernel in
  let all = ref true in
  for i = 0 to t.k - 1 do
    let idx = hash_i t i ~page ~flags in
    ignore (Kernel.read t.kernel ~addr:(t.bits_vaddr + (idx lsr 3)) ~size:1);
    Machine.Model.retire machine 3;
    if not (bit_get t idx) then all := false
  done;
  Machine.Model.branch machine
    ~pc:(Hashtbl.hash ("bloom", t.bits_vaddr))
    ~taken:!all;
  !all

let filter_insert t ~page ~flags =
  for i = 0 to t.k - 1 do
    let idx = hash_i t i ~page ~flags in
    Kernel.write t.kernel ~addr:(t.bits_vaddr + (idx lsr 3)) ~size:1
      (Char.code (Bytes.get t.bits (idx lsr 3)) lor (1 lsl (idx land 7)));
    bit_set t idx
  done;
  t.inserted <- t.inserted + 1

let reset_filter t =
  Bytes.fill t.bits 0 t.bits_size '\000';
  t.inserted <- 0

let add t r = Linear_table.add t.inner r

let remove t ~base =
  let removed = Linear_table.remove t.inner ~base in
  if removed then reset_filter t;
  removed

let clear t =
  Linear_table.clear t.inner;
  reset_filter t

let count t = Linear_table.count t.inner
let regions t = Linear_table.regions t.inner

(** Estimated false-positive probability at the current load. *)
let fp_possible t =
  let m = float_of_int (t.bits_size * 8) in
  let n = float_of_int (t.inserted * t.k) in
  let frac = 1.0 -. exp (-.n /. m) in
  frac ** float_of_int t.k

let lookup t ~addr ~size : Structure.outcome =
  let flags_key = 0 (* flags folded by caller into page key via engine *) in
  ignore flags_key;
  let page = page_of addr in
  (* single-page fast path only: accesses spanning pages take the slow
     path, as a real implementation would *)
  if page = page_of (addr + size - 1) && filter_query t ~page ~flags:0 then
    {
      Structure.matched =
        Some (Region.v ~tag:"bloom-fastpath" ~base:(page lsl 12) ~len:4096
                ~prot:Region.prot_rw ());
      scanned = t.k;
    }
  else begin
    let out = Linear_table.lookup t.inner ~addr ~size in
    (match out.Structure.matched with
    | Some r
      when Region.permits r ~flags:Region.prot_rw
           && page = page_of (addr + size - 1) ->
      (* cache fully-permissive verdicts only: a page readable-and-
         writable per the table can be admitted on any future flags *)
      filter_insert t ~page ~flags:0
    | _ -> ());
    out
  end

(* the exact table behind the filter is what enforcement relies on *)
let table_region t = Linear_table.table_region t.inner

(* no integrity-auditable internals beyond the policy itself *)
let repr _t = Structure.Opaque
