(** The paper's evaluated policy structure (§3.1): a fixed table of at
    most 64 regions, scanned linearly on every guard. "A table was chosen
    in order to minimize pointer chasing, lending speedup over other
    implementations like the Linux kernel's red-black tree (even though
    the tree would have O(log n) time complexity)."

    Entries are 24 bytes (base, length, protection flags) laid out
    contiguously in kernel memory, so consecutive probes walk cache lines
    in order and the per-entry branch is highly predictable — the
    mechanism behind the paper's "cache-friendly linear search". *)

let default_capacity = 64
let entry_size = 24

type t = {
  kernel : Kernel.t;
  base_vaddr : int;
  capacity : int;
  mutable entries : Region.t array;  (** mirror of kernel memory, in order *)
  mutable n : int;
}

let name = "linear"

let create kernel ~capacity =
  let base_vaddr = Kernel.kmalloc kernel ~size:(capacity * entry_size) in
  {
    kernel;
    base_vaddr;
    capacity;
    entries = Array.make capacity (Region.v ~base:0 ~len:1 ~prot:0 ());
    n = 0;
  }

let entry_addr t i = t.base_vaddr + (i * entry_size)

let write_entry t i (r : Region.t) =
  let a = entry_addr t i in
  Kernel.write t.kernel ~addr:a ~size:8 r.Region.base;
  Kernel.write t.kernel ~addr:(a + 8) ~size:8 r.Region.len;
  Kernel.write t.kernel ~addr:(a + 16) ~size:8 r.Region.prot

let add t r =
  if t.n >= t.capacity then Error (Structure.capacity_error t.capacity)
  else begin
    write_entry t t.n r;
    t.entries.(t.n) <- r;
    t.n <- t.n + 1;
    Ok ()
  end

(* the value parked in vacated slots: never matches any lookup and keeps
   the kernel-memory image byte-identical to the [entries] mirror *)
let hole = Region.v ~base:0 ~len:1 ~prot:0 ()

let remove t ~base =
  (* remove the FIRST entry whose base matches — the canonical
     duplicate-base semantics shared by every structure kind *)
  let rec find i =
    if i >= t.n then None
    else if t.entries.(i).Region.base = base then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some i ->
    for j = i to t.n - 2 do
      t.entries.(j) <- t.entries.(j + 1);
      write_entry t j t.entries.(j)
    done;
    t.n <- t.n - 1;
    (* scrub the vacated slot in both the mirror and kernel memory; a
       stale trailing entry readable via Kernel.read is exactly the kind
       of leak a table-bounds bug would turn into a bogus allow *)
    t.entries.(t.n) <- hole;
    write_entry t t.n hole;
    true

let clear t = t.n <- 0
let count t = t.n
let regions t = Array.to_list (Array.sub t.entries 0 t.n)

let lookup t ~addr ~size : Structure.outcome =
  (* The scan is modelled after an unrolled, cache-friendly compare loop:
     one probe load and one compare per entry (pipelined), with a control
     branch only once per 8-entry group — the "optimized for cache-
     friendly search" structure §3.1 describes. *)
  let machine = Kernel.machine t.kernel in
  let rec scan i =
    if i >= t.n then begin
      (* loop exit branch *)
      Machine.Model.branch machine ~pc:(Hashtbl.hash ("lin-exit", t.base_vaddr)) ~taken:false;
      { Structure.matched = None; scanned = t.n }
    end
    else begin
      (* one 8-byte probe of the entry; the mirror supplies the decoded
         region (same value) without re-reading all three words *)
      ignore (Kernel.read t.kernel ~addr:(entry_addr t i) ~size:8);
      Machine.Model.retire machine 1;
      let r = t.entries.(i) in
      let hit = Region.contains r ~addr ~size in
      (* group branch: highly predictable (taken only in the matching
         group) *)
      if i land 7 = 0 || hit then
        Machine.Model.branch machine
          ~pc:(Hashtbl.hash ("lin", t.base_vaddr, i lsr 3))
          ~taken:hit;
      if hit then { Structure.matched = Some r; scanned = i + 1 }
      else scan (i + 1)
    end
  in
  scan 0

let table_region t = Some (t.base_vaddr, t.capacity * entry_size)

type Structure.repr += Linear of t

let repr t = Linear t

(** Fault injection: flip the protection bits of the entry whose base is
    [base] in the decode mirror — the word the lookup's verdict actually
    comes from, i.e. what a wild write into the region table corrupts.
    Deliberately bypasses {!write_entry} and the engine's epoch, exactly
    like an ungoverned store would; only the integrity digest can tell.
    Returns [false] when no entry matches. *)
let corrupt_entry t ~base ~prot =
  let rec find i =
    if i >= t.n then None
    else if t.entries.(i).Region.base = base then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> false
  | Some i ->
    let r = t.entries.(i) in
    t.entries.(i) <-
      Region.v ~tag:r.Region.tag ~base:r.Region.base ~len:r.Region.len ~prot ();
    true
