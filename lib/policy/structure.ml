(** Common interface for policy region structures.

    Every implementation stores its entries in *simulated kernel memory*
    and performs its probes through {!Kernel.read}/{!Kernel.write}, so the
    cost of a policy lookup is mechanistic: the linear table is
    prefetch-friendly and branch-predictable, binary search has data-
    dependent branches, the splay tree chases pointers, the Bloom filter
    scatters probes. This is how the repo reproduces the paper's §3.1/§4.2
    discussion of structure trade-offs rather than asserting it. *)

type outcome = {
  matched : Region.t option;  (** first region containing the range *)
  scanned : int;  (** entries (or nodes/probes) examined *)
}

(** Typed escape hatch from the packed {!instance}: implementations that
    expose integrity-auditable internals (the shadow table's slot arrays,
    the linear table's entry mirror) extend this variant with their own
    constructor; everything else answers {!Opaque}. The integrity layer
    uses it to reach tier metadata without widening the lookup API. *)
type repr = ..

type repr += Opaque

(** Canonical capacity-exhaustion error. Every structure returns exactly
    this string from [add] when it is full, so callers (the ioctl layer,
    the RCU publish path) can map it to a typed [-ENOSPC] instead of a
    blanket [-1] — see {!is_capacity_error}. *)
let capacity_error capacity =
  Printf.sprintf "policy table full (%d regions)" capacity

let capacity_error_marker = "policy table full"

(* substring search, because intermediaries (Engine.build_instance) wrap
   the structure's message in their own context prefix *)
let is_capacity_error msg =
  let m = capacity_error_marker in
  let lm = String.length m and ln = String.length msg in
  let rec at i = i + lm <= ln && (String.sub msg i lm = m || at (i + 1)) in
  at 0

module type S = sig
  type t

  val name : string
  val create : Kernel.t -> capacity:int -> t

  val add : t -> Region.t -> (unit, string) result
  (** Append/insert a rule. Implementations that cannot represent
      overlapping regions (sorted table, splay tree — the trade-off the
      paper calls out) return [Error] on overlap. *)

  val remove : t -> base:int -> bool
  val clear : t -> unit
  val count : t -> int
  val regions : t -> Region.t list

  val lookup : t -> addr:int -> size:int -> outcome
  (** Find the first/best region containing [addr, addr+size), charging
      machine cost for every probe. *)

  val table_region : t -> (int * int) option
  (** [(vaddr, bytes)] of the structure's contiguous in-kernel table, if
      it keeps one — the policy data an attacker would corrupt. Node-based
      structures (trees) scatter per-insert allocations and return
      [None]. *)

  val repr : t -> repr
  (** The structure's typed self-description (see {!type:repr});
      {!Opaque} when it exposes no auditable internals. *)
end

type instance = I : (module S with type t = 'a) * 'a -> instance

let name (I ((module M), _)) = M.name
let add (I ((module M), t)) r = M.add t r
let remove (I ((module M), t)) ~base = M.remove t ~base
let clear (I ((module M), t)) = M.clear t
let count (I ((module M), t)) = M.count t
let regions (I ((module M), t)) = M.regions t
let lookup (I ((module M), t)) ~addr ~size = M.lookup t ~addr ~size
let table_region (I ((module M), t)) = M.table_region t
let repr (I ((module M), t)) = M.repr t
