(** Multi-tenant policy domains — the MOAT/BULKHEAD-scale extension of
    the paper's single 64-entry table: every loaded module gets its own
    policy domain (table instance + epoch + stats), so hundreds of
    modules with thousands of regions total no longer share one table or
    one invalidation epoch.

    Two-tier check path, mirroring the engine's shadow/inline-cache
    design at domain granularity:

    + a *sharded global shadow page table* in front: direct-mapped slots
      keyed by (domain, page), each remembering the page's uniform
      protection under that domain's policy. A hit costs one probe and
      answers without touching the domain's table; a slot is valid only
      for the domain epoch it was filled in, so any domain mutation
      invalidates exactly that domain's facts in O(1).
    + per-domain exact structures behind it: a domain starts on the
      paper's evaluated 64-entry linear table, and is promoted wholesale
      to the {!Interval_tree} (the only O(log n) structure with
      first-match semantics) the first time an install pushes it past the
      fast path. Promotion is a build-and-swap publish, never an in-place
      conversion.

    Mutations are generational, like {!Engine.publish}: a successor
    instance is built off-line and installed with a single pointer store
    plus a domain-epoch bump. The batched {!install_regions} therefore
    gives old-or-new atomicity for the whole batch — and a capacity
    failure while building the successor leaves the live generation
    untouched, which is the whole-batch ENOSPC rollback the ioctl
    contract requires. *)

(* sharded global shadow front: [shard_count] independent direct-mapped
   shard arrays of [shard_slots] slots each. Sharding keeps slot
   contention between domains bounded: a hot domain can evict at most
   one shard's worth of another domain's facts. *)
let shard_count = 16
let shard_slots = 256
let slot_bytes = 16

type slot = {
  mutable sl_dom : int;  (** owning domain id; -1 = invalid *)
  mutable sl_page : int;
  mutable sl_epoch : int;  (** domain epoch at fill time *)
  mutable sl_prot : int;  (** the page's uniform protection bits *)
  mutable sl_depth : int;  (** exact-walk scan depth, tier-invariant *)
}

type dom = {
  d_id : int;
  d_name : string;
  mutable d_inst : Structure.instance;  (** live generation *)
  mutable d_itree : bool;  (** promoted past the linear fast path *)
  mutable d_default_allow : bool;
  mutable d_epoch : int;  (** bumped on every mutation; shadow validates *)
  mutable d_regions : Region.t list;
      (** authoritative insertion-order mirror of the live generation;
          the reference for paranoid verification and successor builds *)
  d_stats : Engine.stats;
  mutable d_sh_hits : int;
  mutable d_sh_misses : int;
}

type t = {
  kernel : Kernel.t;
  fast_capacity : int;  (** linear-tier limit; past it, interval tree *)
  big_capacity : int;  (** interval-tier limit (hard ENOSPC ceiling) *)
  mutable doms : dom list;  (** newest last; ids are never reused *)
  by_id : (int, dom) Hashtbl.t;
      (** O(1) id index over [doms] — the guard hot path resolves its
          domain here, so tenant count must not show up in lookup cost *)
  mutable next_id : int;
  shard_vaddrs : int array;  (** simulated tag array per shard *)
  shards : slot array array;
  mutable creates : int;
  mutable destroys : int;
  mutable publications : int;
  mutable retired : int;
  mutable promotions : int;  (** linear -> interval tier upgrades *)
  mutable verify : bool;
  mutable stale : int;
}

let default_big_capacity = 1 lsl 14

let create ?(fast_capacity = Linear_table.default_capacity)
    ?(big_capacity = default_big_capacity) kernel =
  {
    kernel;
    fast_capacity;
    big_capacity;
    doms = [];
    by_id = Hashtbl.create 64;
    next_id = 1;
    shard_vaddrs =
      Array.init shard_count (fun _ ->
          Kernel.kmalloc kernel ~size:(shard_slots * slot_bytes));
    shards =
      Array.init shard_count (fun _ ->
          Array.init shard_slots (fun _ ->
              {
                sl_dom = -1;
                sl_page = -1;
                sl_epoch = -1;
                sl_prot = 0;
                sl_depth = 0;
              }));
    creates = 0;
    destroys = 0;
    publications = 0;
    retired = 0;
    promotions = 0;
    verify = false;
    stale = 0;
  }

let find t id = Hashtbl.find_opt t.by_id id
let domains t = t.doms
let count t = List.length t.doms
let dom_id d = d.d_id
let dom_name d = d.d_name
let dom_epoch d = d.d_epoch
let dom_regions d = d.d_regions
let dom_default_allow d = d.d_default_allow
let dom_stats d = d.d_stats
let dom_shadow_hits d = d.d_sh_hits
let dom_shadow_misses d = d.d_sh_misses
let dom_structure d = if d.d_itree then "interval" else "linear"
let publications t = t.publications
let retired t = t.retired
let promotions t = t.promotions
let set_verify t b = t.verify <- b
let stale_allows t = t.stale

let make_instance t ~itree =
  if itree then
    Structure.I
      ((module Interval_tree), Interval_tree.create t.kernel ~capacity:t.big_capacity)
  else
    Structure.I
      ((module Linear_table), Linear_table.create t.kernel ~capacity:t.fast_capacity)

let create_domain ?name ?(default_allow = false) t =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.creates <- t.creates + 1;
  let d =
    {
      d_id = id;
      d_name = (match name with Some n -> n | None -> Printf.sprintf "dom%d" id);
      d_inst = make_instance t ~itree:false;
      d_itree = false;
      d_default_allow = default_allow;
      d_epoch = 0;
      d_regions = [];
      d_stats = { Engine.checks = 0; allowed = 0; denied = 0; entries_scanned = 0 };
      d_sh_hits = 0;
      d_sh_misses = 0;
    }
  in
  t.doms <- t.doms @ [ d ];
  Hashtbl.replace t.by_id id d;
  d

(** Tear a domain down. Its id is never reused, so shadow slots still
    tagged with it can never validate against a future domain — stale
    facts die by construction, not by a flush walk. *)
let destroy_domain t id =
  match find t id with
  | None -> false
  | Some _ ->
    t.doms <- List.filter (fun d -> d.d_id <> id) t.doms;
    Hashtbl.remove t.by_id id;
    t.destroys <- t.destroys + 1;
    t.retired <- t.retired + 1;
    true

(* ------------------------------------------------------------------ *)
(* generational mutation: build a successor, swap one pointer *)

(* Build a fresh instance holding [rs]; Error = typed errno, live
   generation untouched. Promotion to the interval tier happens here,
   when the target region count first exceeds the fast path. *)
let build t (d : dom) rs : (Structure.instance * bool, int) result =
  let n = List.length rs in
  if n > t.big_capacity then Error Kernel.enospc
  else begin
    let itree = d.d_itree || n > t.fast_capacity in
    let inst = make_instance t ~itree in
    let rec go = function
      | [] -> Ok (inst, itree)
      | r :: rest -> (
        match Structure.add inst r with
        | Ok () -> go rest
        | Error e ->
          if Structure.is_capacity_error e then Error Kernel.enospc
          else Error Kernel.einval)
    in
    go rs
  end

(* Install a fully-built successor: one pointer store + epoch bump, the
   same publish idiom as Engine.publish. The old generation is retired
   immediately (domain mutations are driven from ioctl context, where
   the simulated interleaving never suspends a reader mid-walk). *)
let publish t (d : dom) inst ~itree ~regions =
  if itree && not d.d_itree then begin
    t.promotions <- t.promotions + 1;
    Kernel.Klog.printk (Kernel.log t.kernel)
      "CARAT KOP domain %d (%s): promoted to interval tier (%d regions)"
      d.d_id d.d_name (List.length regions)
  end;
  d.d_inst <- inst;
  d.d_itree <- itree;
  d.d_regions <- regions;
  d.d_epoch <- d.d_epoch + 1;
  t.publications <- t.publications + 1;
  t.retired <- t.retired + 1;
  Machine.Model.store (Kernel.machine t.kernel) t.shard_vaddrs.(0) 8

(** Install [rs] into domain [id] as ONE atomic batch: readers observe
    the pre-batch policy or all of it, never a prefix, and any failure
    (capacity, malformed region) returns a typed errno with the live
    policy untouched. *)
let install_regions t ~domain rs : int =
  match find t domain with
  | None -> Kernel.einval
  | Some d -> (
    let target = d.d_regions @ rs in
    match build t d target with
    | Error e -> e
    | Ok (inst, itree) ->
      publish t d inst ~itree ~regions:target;
      0)

let add_region t ~domain r = install_regions t ~domain [ r ]

(** Remove the first region based at [base] — the canonical
    duplicate-base semantics — via a successor publish. *)
let remove_region t ~domain ~base : int =
  match find t domain with
  | None -> Kernel.einval
  | Some d ->
    if not (List.exists (fun (r : Region.t) -> r.Region.base = base) d.d_regions)
    then -1
    else begin
      let rec drop_first = function
        | [] -> []
        | (r : Region.t) :: rest ->
          if r.Region.base = base then rest else r :: drop_first rest
      in
      let target = drop_first d.d_regions in
      match build t d target with
      | Error e -> e
      | Ok (inst, itree) ->
        publish t d inst ~itree ~regions:target;
        0
    end

let set_default_allow t ~domain b : int =
  match find t domain with
  | None -> Kernel.einval
  | Some d ->
    d.d_default_allow <- b;
    d.d_epoch <- d.d_epoch + 1;
    0

(* ------------------------------------------------------------------ *)
(* checks *)

(* host-side reference: exact first-match over the authoritative mirror *)
let reference_allows (d : dom) ~addr ~size ~flags =
  let rec go = function
    | [] -> d.d_default_allow
    | (r : Region.t) :: rest ->
      if Region.contains r ~addr ~size then Region.permits r ~flags
      else go rest
  in
  go d.d_regions

(* the page's uniform protection under [d]'s policy, iff provable for
   every in-page byte range — same classification as
   Engine.page_uniform_prot, against the domain's own region order *)
let page_uniform_prot (d : dom) page =
  let lo = page lsl Shadow_table.page_bits in
  let hi = lo + Shadow_table.page_size in
  let rec go idx first_full = function
    | [] -> (
      match first_full with
      | Some ((r : Region.t), at) -> Some (r.Region.prot, at + 1)
      | None ->
        let depth = List.length d.d_regions in
        if d.d_default_allow then Some (Region.prot_rw, depth)
        else Some (0, depth))
    | (r : Region.t) :: rest ->
      let rlim = Region.limit r in
      if r.Region.base < hi && lo < rlim then
        if r.Region.base <= lo && hi <= rlim then
          go (idx + 1)
            (match first_full with Some _ -> first_full | None -> Some (r, idx))
            rest
        else None
      else go (idx + 1) first_full rest
  in
  go 0 None d.d_regions

(* slot placement: multiplicative hash of (domain, page), high bits pick
   the shard, low bits the slot within it *)
let slot_of ~domain ~page =
  let h = (domain * 0x9E3779B1) lxor (page * 0x85EBCA6B) in
  let h = h lxor (h lsr 15) in
  ((h lsr 16) land (shard_count - 1), h land (shard_slots - 1))

(* exact walk + slot refill on behalf of [check] *)
let check_slow t (d : dom) sl ~page ~single_page ~addr ~size ~flags =
  let machine = Kernel.machine t.kernel in
  let out = Structure.lookup d.d_inst ~addr ~size in
  d.d_stats.Engine.checks <- d.d_stats.Engine.checks + 1;
  d.d_stats.Engine.entries_scanned <-
    d.d_stats.Engine.entries_scanned + out.Structure.scanned;
  let allowed =
    match out.Structure.matched with
    | Some r ->
      Machine.Model.retire machine 2;
      Region.permits r ~flags
    | None -> d.d_default_allow
  in
  if allowed then d.d_stats.Engine.allowed <- d.d_stats.Engine.allowed + 1
  else d.d_stats.Engine.denied <- d.d_stats.Engine.denied + 1;
  if allowed && t.verify && not (reference_allows d ~addr ~size ~flags) then
    t.stale <- t.stale + 1;
  (* refill: cacheable only when the access stays on one page and the
     page's protection is uniform under this domain *)
  if single_page then begin
    match page_uniform_prot d page with
    | None -> ()
    | Some (prot, depth) ->
      sl.sl_dom <- d.d_id;
      sl.sl_page <- page;
      sl.sl_epoch <- d.d_epoch;
      sl.sl_prot <- prot;
      sl.sl_depth <- depth;
      Machine.Model.retire machine 2
  end;
  allowed

(** The multi-domain guard check: sharded-shadow probe, then the
    domain's exact structure. Decision-identical to the first-match walk
    over the domain's policy (pinned by the paranoid verifier). Unknown
    domains deny. *)
let check t ~domain ~addr ~size ~flags : bool =
  match find t domain with
  | None -> false
  | Some d ->
    let machine = Kernel.machine t.kernel in
    (* prologue: domain resolution + argument marshalling *)
    Machine.Model.retire machine 4;
    let page = addr lsr Shadow_table.page_bits in
    let single_page =
      size > 0 && (addr + size - 1) lsr Shadow_table.page_bits = page
    in
    let shard, idx = slot_of ~domain ~page in
    let sl = t.shards.(shard).(idx) in
    (* one probe of the slot's tag word + validation *)
    Machine.Model.load machine (t.shard_vaddrs.(shard) + (idx * slot_bytes)) 8;
    Machine.Model.retire machine 2;
    let hit =
      sl.sl_dom = domain && sl.sl_page = page && sl.sl_epoch = d.d_epoch
      && single_page && flags <> 0
    in
    Machine.Model.branch machine
      ~pc:(Hashtbl.hash ("dom-shadow", shard, idx))
      ~taken:hit;
    if hit && flags land sl.sl_prot = flags then begin
      d.d_sh_hits <- d.d_sh_hits + 1;
      d.d_stats.Engine.checks <- d.d_stats.Engine.checks + 1;
      d.d_stats.Engine.allowed <- d.d_stats.Engine.allowed + 1;
      d.d_stats.Engine.entries_scanned <-
        d.d_stats.Engine.entries_scanned + sl.sl_depth;
      if t.verify && not (reference_allows d ~addr ~size ~flags) then
        t.stale <- t.stale + 1;
      true
    end
    else begin
      d.d_sh_misses <- d.d_sh_misses + 1;
      check_slow t d sl ~page ~single_page ~addr ~size ~flags
    end

(* ------------------------------------------------------------------ *)
(* observability *)

let render t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "domains: %d live (%d created, %d destroyed), %d publications, %d \
        retired, %d tier promotions\n"
       (count t) t.creates t.destroys t.publications t.retired t.promotions);
  Buffer.add_string b
    (Printf.sprintf "shadow: %d shards x %d slots\n" shard_count shard_slots);
  List.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf
           "dom %d (%s): structure=%s regions=%d epoch=%d default=%s \
            checks=%d allowed=%d denied=%d sh_hits=%d sh_misses=%d\n"
           d.d_id d.d_name (dom_structure d)
           (List.length d.d_regions)
           d.d_epoch
           (if d.d_default_allow then "allow" else "deny")
           d.d_stats.Engine.checks d.d_stats.Engine.allowed
           d.d_stats.Engine.denied d.d_sh_hits d.d_sh_misses))
    t.doms;
  Buffer.contents b
