(** Page-granular permission shadow — the "guard TLB" (tentpole of the
    guard fast path). A direct-mapped array maps page number -> the
    verdict-relevant fact for that page, derived from the exact region
    table it wraps (a {!Linear_table}):

    - [Uniform r]: every region in the table either fully contains or is
      disjoint from the page, and [r] is the first (table-order) region
      fully containing it. For *any* byte range inside the page the exact
      first-match walk returns [r], so the shadow can answer in O(1).
    - [No_region]: no region intersects the page at all; the exact walk
      returns no match for any in-page range and the engine's default
      action applies.
    - [Straddle]: some region partially overlaps the page. First-match
      semantics then depend on the exact byte range, so the shadow always
      defers to the wrapped structure. This is the correctness escape
      hatch for ranges/pages that cross region boundaries.

    Accesses that cross a page boundary, or carry a non-canonical
    (negative) address, also defer to the exact structure.

    Entries are tagged with the page number plus a generation stamp that
    every mutation bumps, so a policy push invalidates the whole shadow in
    O(1) without touching the array. Tags live in simulated kernel memory
    and each hit probes one of them through {!Kernel.read}, so the
    mechanistic cost of a shadow hit (one hot load, two ALU ops, one
    highly predictable branch) is charged exactly like the paper's other
    structures charge theirs. *)

let page_bits = 12
let page_size = 1 lsl page_bits

(* direct-mapped entry count; must be a power of two *)
let shadow_entries = 256

type entry = Invalid | Uniform of Region.t | No_region | Straddle

type t = {
  kernel : Kernel.t;
  inner : Linear_table.t;  (** the exact structure; holds policy truth *)
  base_vaddr : int;  (** simulated tag array, 8 bytes per entry *)
  tags : int array;  (** page number cached in each slot, -1 = empty *)
  gens : int array;  (** generation the slot was filled under *)
  state : entry array;
  depths : int array;
      (** per-slot tier-invariant scan depth: the entries the exact
          linear-order walk examines before answering for this page (the
          match's 1-based table position, or the region count when no
          region intersects), so shadow hits report the same
          [Structure.outcome.scanned] the wrapped walk would *)
  mutable gen : int;  (** bumped on every add/remove/clear *)
  sums : int array;
      (** per-slot integrity checksums over (tag, gen, state, depth),
          refreshed on every refill — host-side metadata the integrity
          watchdog audits; a wild write that smashes a slot without
          recomputing its checksum is caught by {!Integrity} *)
  branch_pcs : int array;  (** per-slot stable branch-site ids *)
  mutable hits : int;
  mutable misses : int;
  mutable fallbacks : int;  (** straddle / cross-page exact walks *)
}

let name = "shadow+linear"

let create kernel ~capacity =
  let inner = Linear_table.create kernel ~capacity in
  {
    kernel;
    inner;
    base_vaddr = Kernel.kmalloc kernel ~size:(shadow_entries * 8);
    tags = Array.make shadow_entries (-1);
    gens = Array.make shadow_entries 0;
    state = Array.make shadow_entries Invalid;
    depths = Array.make shadow_entries 0;
    gen = 0;
    sums = Array.make shadow_entries 0;
    branch_pcs = Array.init shadow_entries (fun i -> Hashtbl.hash ("shadow", i));
    hits = 0;
    misses = 0;
    fallbacks = 0;
  }

let invalidate t = t.gen <- t.gen + 1

let add t r =
  match Linear_table.add t.inner r with
  | Ok () ->
    invalidate t;
    Ok ()
  | Error _ as e -> e

let remove t ~base =
  let removed = Linear_table.remove t.inner ~base in
  if removed then invalidate t;
  removed

let clear t =
  Linear_table.clear t.inner;
  invalidate t

let count t = Linear_table.count t.inner
let regions t = Linear_table.regions t.inner

(* Page classification against the exact table, in table order. A region
   [fully contains] the page when [r.base <= lo && hi <= limit r]; it
   [partially overlaps] when it intersects the page without containing
   it. Any partial overlap forces [Straddle]. Also returns the depth the
   exact walk would record for an in-page range: the first full
   container's 1-based position (a disjoint region can never match an
   in-page range, so the first full container *is* the first match), or
   the full region count when nothing intersects. *)
let classify_page t page : entry * int =
  let lo = page lsl page_bits in
  let hi = lo + page_size in
  let rec go idx first_full = function
    | [] -> (
      match first_full with
      | Some (r, at) -> (Uniform r, at + 1)
      | None -> (No_region, Linear_table.count t.inner))
    | (r : Region.t) :: rest ->
      let rlim = Region.limit r in
      if r.Region.base < hi && lo < rlim then
        if r.Region.base <= lo && hi <= rlim then
          go (idx + 1)
            (match first_full with Some _ -> first_full | None -> Some (r, idx))
            rest
        else (Straddle, 0)
      else go (idx + 1) first_full rest
  in
  go 0 None (Linear_table.regions t.inner)

(* Stable encoding of a slot entry for checksumming and audit
   comparison. *)
let entry_code = function
  | Invalid -> (0, 0, 0, 0)
  | Uniform (r : Region.t) -> (1, r.Region.base, r.Region.len, r.Region.prot)
  | No_region -> (2, 0, 0, 0)
  | Straddle -> (3, 0, 0, 0)

let slot_sum t i =
  Hashtbl.hash (t.tags.(i), t.gens.(i), entry_code t.state.(i), t.depths.(i))

let exact t ~addr ~size =
  t.fallbacks <- t.fallbacks + 1;
  Linear_table.lookup t.inner ~addr ~size

let lookup t ~addr ~size : Structure.outcome =
  let machine = Kernel.machine t.kernel in
  if addr < 0 then exact t ~addr ~size
  else begin
    let page = addr lsr page_bits in
    if (addr + size - 1) lsr page_bits <> page then
      (* crosses a page boundary: permissions may differ across the line *)
      exact t ~addr ~size
    else begin
      let i = page land (shadow_entries - 1) in
      (* one probe of the shadow tag (hot after warm-up) + tag compare *)
      ignore (Kernel.read t.kernel ~addr:(t.base_vaddr + (i * 8)) ~size:8);
      Machine.Model.retire machine 2;
      let valid = t.tags.(i) = page && t.gens.(i) = t.gen in
      Machine.Model.branch machine ~pc:t.branch_pcs.(i) ~taken:valid;
      match if valid then t.state.(i) else Invalid with
      | Uniform r ->
        t.hits <- t.hits + 1;
        (* report the wrapped walk's scan depth, not the single shadow
           probe, so decision stats are tier-invariant; the probe count
           lives in the hits/misses tier counters instead *)
        { Structure.matched = Some r; scanned = t.depths.(i) }
      | No_region ->
        t.hits <- t.hits + 1;
        { Structure.matched = None; scanned = t.depths.(i) }
      | Straddle ->
        (* cached fact: this page needs the exact walk every time *)
        exact t ~addr ~size
      | Invalid ->
        (* shadow miss: exact walk, then refill this slot *)
        t.misses <- t.misses + 1;
        let out = Linear_table.lookup t.inner ~addr ~size in
        let cls, depth = classify_page t page in
        t.tags.(i) <- page;
        t.gens.(i) <- t.gen;
        t.state.(i) <- cls;
        t.depths.(i) <- depth;
        t.sums.(i) <- slot_sum t i;
        (* the refill's visible cost: classification arithmetic plus the
           tag store (the walk itself was just charged by the inner
           lookup, exactly like a hardware TLB miss pays the page walk) *)
        Machine.Model.retire machine (2 * max 1 (Linear_table.count t.inner));
        Kernel.write t.kernel ~addr:(t.base_vaddr + (i * 8)) ~size:8 page;
        out
    end
  end

let table_region t = Linear_table.table_region t.inner

(** Diagnostics for the guardpath bench. *)
let stats t = (t.hits, t.misses, t.fallbacks)

type Structure.repr += Shadow of t

let repr t = Shadow t

(** The exact structure the shadow wraps — policy truth, and the table
    the instance-corruption fault class targets. *)
let inner t = t.inner

(** A slot is live iff it carries a page tag stamped with the current
    generation — only live slots can answer a lookup, so only they are
    audited. *)
let slot_live t i = t.tags.(i) >= 0 && t.gens.(i) = t.gen

(** Fault injection: smash the slot covering [page] into a bogus
    [Uniform region] fact stamped valid for the current generation — the
    effect of a wild write landing in the shadow array. With
    [fix_checksum] the attacker also recomputes the slot checksum,
    defeating the cheap integrity check and leaving only the semantic
    cross-check against the authoritative table to catch it. *)
let corrupt_slot t ~page ~region ~fix_checksum =
  let i = page land (shadow_entries - 1) in
  t.tags.(i) <- page;
  t.gens.(i) <- t.gen;
  t.state.(i) <- Uniform region;
  t.depths.(i) <- 1;
  if fix_checksum then t.sums.(i) <- slot_sum t i
