(** Loop-invariant guard hoisting — the second CARAT-CAKE-style guard
    optimization, implemented for the [abl-opt] ablation.

    A guard inside a natural loop whose address operand is loop-invariant
    (an [Imm]/[Sym], or a register never redefined inside the loop) fires
    identically on every iteration. If the loop has a unique preheader
    (single outside predecessor whose only successor is the header), the
    guard can run once there instead. Hoisting moves the guard *earlier*,
    so the policy check still precedes every guarded access; it is only
    performed when no call inside the loop could mutate the policy
    (conservatively: no non-guard calls in the loop at all). *)

open Kir.Types

let regs_defined_in_blocks blocks =
  let defined = Hashtbl.create 32 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match def_of_instr i with
          | Some r -> Hashtbl.replace defined r ()
          | None -> ())
        b.body)
    blocks;
  defined

let run ~guard_symbol (m : modul) : Pass.result =
  let hoisted = ref 0 in
  let process_func f =
    let cfg = Kir.Cfg.of_func f in
    let linfo = Loops.compute cfg in
    List.iter
      (fun (l : Loops.loop) ->
        match Loops.outside_preds linfo l with
        | [ p ] when cfg.Kir.Cfg.succ.(p) = [ l.Loops.header ] ->
          let pre = Kir.Cfg.block cfg p in
          let loop_blocks = List.map (Kir.Cfg.block cfg) l.Loops.body in
          let defined = regs_defined_in_blocks loop_blocks in
          let invariant = function
            | Imm _ | Sym _ -> true
            | Reg r -> not (Hashtbl.mem defined r)
          in
          let has_foreign_call =
            List.exists
              (fun b ->
                List.exists
                  (function
                    | Call { callee; _ } -> callee <> guard_symbol
                    | Callind _ -> true
                    | _ -> false)
                  b.body)
              loop_blocks
          in
          if not has_foreign_call then begin
            (* collect hoistable guards, dedupe by (addr,size,flags) *)
            let moved = Hashtbl.create 8 in
            List.iter
              (fun b ->
                let keep i =
                  match i with
                  (* both guard forms; the trailing site id (if present)
                     moves with the call and keeps indexing the same
                     static site after hoisting *)
                  | Call
                      {
                        callee;
                        args = [ addr; Imm size; Imm flags ];
                        dst = None;
                      }
                  | Call
                      {
                        callee;
                        args = [ addr; Imm size; Imm flags; Imm _ ];
                        dst = None;
                      }
                    when callee = guard_symbol && invariant addr ->
                    let key = (addr, size, flags) in
                    if not (Hashtbl.mem moved key) then begin
                      Hashtbl.replace moved key ();
                      pre.body <- pre.body @ [ i ]
                    end;
                    incr hoisted;
                    false
                  | _ -> true
                in
                b.body <- List.filter keep b.body)
              loop_blocks
          end
        | _ -> ())
      linfo.Loops.loops
  in
  List.iter process_func m.funcs;
  {
    Pass.changed = !hoisted > 0;
    remarks = [ ("guards_hoisted", string_of_int !hoisted) ];
  }

let pass ?(guard_symbol = Guard_injection.guard_symbol_default) () =
  Pass.make "guard-hoist" (run ~guard_symbol)
