(** Loop-invariant guard hoisting — the second CARAT-CAKE-style guard
    optimization, implemented for the [abl-opt] ablation.

    A guard inside a natural loop whose address operand is loop-invariant
    (an [Imm]/[Sym], or a register never redefined inside the loop) fires
    identically on every iteration. If the loop has a unique preheader
    (single outside predecessor whose only successor is the header), the
    guard can run once there instead. Hoisting moves the guard *earlier*,
    so the policy check still precedes every guarded access; it is only
    performed when no call inside the loop could mutate the policy
    (conservatively: no non-guard calls in the loop at all).

    The pass is idempotent: the per-loop dedupe table is seeded with the
    guards already sitting in the preheader (whose address value still
    holds at the loop entry), so hoisting into a preheader that already
    checks the same (addr, size, flags) — because an earlier run moved a
    guard there, or because the injection pass guarded a pre-loop access
    to the same address — deletes the in-loop re-check instead of
    stacking a duplicate. *)

open Kir.Types

let regs_defined_in_blocks blocks =
  let defined = Hashtbl.create 32 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match def_of_instr i with
          | Some r -> Hashtbl.replace defined r ()
          | None -> ())
        b.body)
    blocks;
  defined

(* both guard forms; the trailing site id (if present) moves with the
   call and keeps indexing the same static site after hoisting *)
let guard_key ~guard_symbol = function
  | Call { callee; args = [ addr; Imm size; Imm flags ]; dst = None }
  | Call { callee; args = [ addr; Imm size; Imm flags; Imm _ ]; dst = None }
    when callee = guard_symbol ->
    Some (addr, size, flags)
  | _ -> None

let run ~guard_symbol (m : modul) : Pass.result =
  let hoisted = ref 0 in
  let deduped = ref 0 in
  let process_func f =
    let cfg = Kir.Cfg.of_func f in
    let linfo = Loops.compute cfg in
    List.iter
      (fun (l : Loops.loop) ->
        match Loops.outside_preds linfo l with
        | [ p ] when cfg.Kir.Cfg.succ.(p) = [ l.Loops.header ] ->
          let pre = Kir.Cfg.block cfg p in
          let loop_blocks = List.map (Kir.Cfg.block cfg) l.Loops.body in
          let defined = regs_defined_in_blocks loop_blocks in
          let invariant = function
            | Imm _ | Sym _ -> true
            | Reg r -> not (Hashtbl.mem defined r)
          in
          let has_foreign_call =
            List.exists
              (fun b ->
                List.exists
                  (function
                    | Call { callee; _ } -> callee <> guard_symbol
                    | Callind _ -> true
                    | _ -> false)
                  b.body)
              loop_blocks
          in
          if not has_foreign_call then begin
            (* dedupe by (addr,size,flags), seeded with the guards already
               in the preheader whose address value still holds at its end
               (Imm/Sym, or a register not redefined below the guard) *)
            let moved = Hashtbl.create 8 in
            let rec seed = function
              | [] -> ()
              | i :: rest ->
                (match guard_key ~guard_symbol i with
                | Some ((addr, _, _) as key) ->
                  let stable =
                    match addr with
                    | Imm _ | Sym _ -> true
                    | Reg r ->
                      not (List.exists (fun j -> def_of_instr j = Some r) rest)
                  in
                  if stable then Hashtbl.replace moved key ()
                | None -> ());
                seed rest
            in
            seed pre.body;
            List.iter
              (fun b ->
                let keep i =
                  match guard_key ~guard_symbol i with
                  | Some ((addr, _, _) as key) when invariant addr ->
                    if Hashtbl.mem moved key then incr deduped
                    else begin
                      Hashtbl.replace moved key ();
                      pre.body <- pre.body @ [ i ];
                      incr hoisted
                    end;
                    false
                  | _ -> true
                in
                b.body <- List.filter keep b.body)
              loop_blocks
          end
        | _ -> ())
      linfo.Loops.loops
  in
  List.iter process_func m.funcs;
  {
    Pass.changed = !hoisted + !deduped > 0;
    remarks =
      [
        ("guards_hoisted", string_of_int !hoisted);
        ("guards_deduped", string_of_int !deduped);
      ];
  }

let pass ?(guard_symbol = Guard_injection.guard_symbol_default) () =
  Pass.make "guard-hoist" (run ~guard_symbol)
