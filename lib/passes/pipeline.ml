(** Canonical pass pipelines.

    [kop_default] is the paper's compiler: attest, inject a guard before
    every load/store with no optimization, certify, sign.

    [kop_optimized] adds the CARAT-CAKE-style guard optimizations the
    paper deliberately omits (redundant-guard elimination and loop-
    invariant hoisting); used by the [abl-opt] ablation.

    [baseline] only signs — the untransformed module for A/B runs.

    The guard-completeness certifier lives one library above this one
    ([Analysis.Certify]); it registers itself through {!set_certifier}
    at module-initialization time, and both kop pipelines run it right
    before signing so the certificate ends up under the signature. The
    certified guard optimizer ([Analysis.Optimize]) registers itself
    the same way through {!set_optimizer} and runs only at
    {!O_aggressive}. *)

let default_key = "kop-vendor-key"
let default_signer = "kop-ocaml"

(** Guard-optimization levels, the [--opt] knob: [O_none] is the
    paper's unoptimized compiler, [O_basic] the local CARAT-CAKE-style
    elimination + hoisting, [O_aggressive] adds the certificate-gated
    optimizer (coalescing, loop hoist-widening, interprocedural
    elimination) when one is registered. *)
type opt_level = O_none | O_basic | O_aggressive

let opt_level_to_string = function
  | O_none -> "none"
  | O_basic -> "basic"
  | O_aggressive -> "aggressive"

let opt_level_of_string = function
  | "none" | "0" -> Some O_none
  | "basic" | "1" -> Some O_basic
  | "aggressive" | "2" -> Some O_aggressive
  | _ -> None

let all_opt_levels = [ O_none; O_basic; O_aggressive ]

(* §5 extensions, off by default to stay faithful to the paper's
   prototype: intrinsic guarding and indirect-call (CFI) guarding *)
let extension_passes ~guard_intrinsics ~guard_cfi =
  (if guard_intrinsics then [ Intrinsic_guard.pass () ] else [])
  @ if guard_cfi then [ Cfi_guard.pass () ] else []

(* the certifier pass constructor, registered by Analysis.Certify; kept
   as a ref because the analysis library depends on this one *)
let certifier : (unit -> Pass.t) option ref = ref None
let set_certifier mk = certifier := Some mk
let certify_passes () = match !certifier with Some mk -> [ mk () ] | None -> []

(* the certified guard optimizer, registered the same way by
   Analysis.Optimize; aggressive pipelines degrade to basic when no
   optimizer is linked in *)
let optimizer : (unit -> Pass.t) option ref = ref None
let set_optimizer mk = optimizer := Some mk
let optimizer_passes () = match !optimizer with Some mk -> [ mk () ] | None -> []

(* in strict mode the attestation verdict must hold on the *final*
   module — after the CFI extension had its chance to cover indirect
   calls — so the strict scan runs as a late re-check *)
let strict_recheck ~strict =
  if strict then [ Attest.pass ~strict:true () ] else []

(** The kop pipeline at a chosen optimization level. *)
let kop ?(key = default_key) ?(signer = default_signer)
    ?(config = Guard_injection.default_config) ?(guard_intrinsics = false)
    ?(guard_cfi = false) ?(strict = false) ?(opt = O_none) () =
  let gsym = config.Guard_injection.guard_symbol in
  [ Dce.pass (); Attest.pass (); Guard_injection.pass ~config () ]
  @ (match opt with
    | O_none -> []
    | O_basic | O_aggressive ->
      [ Guard_elim.pass ~guard_symbol:gsym (); Guard_hoist.pass ~guard_symbol:gsym () ])
  @ (match opt with O_aggressive -> optimizer_passes () | _ -> [])
  @ extension_passes ~guard_intrinsics ~guard_cfi
  @ strict_recheck ~strict @ certify_passes ()
  @ [ Signing.pass ~key ~signer () ]

let kop_default ?key ?signer ?config ?guard_intrinsics ?guard_cfi ?strict () =
  kop ?key ?signer ?config ?guard_intrinsics ?guard_cfi ?strict ~opt:O_none ()

let kop_optimized ?key ?signer ?config ?guard_intrinsics ?guard_cfi ?strict ()
    =
  kop ?key ?signer ?config ?guard_intrinsics ?guard_cfi ?strict ~opt:O_basic ()

(** Sign without transforming: used for baseline modules so that the
    loader accepts them in permissive mode while A/B tests can still
    detect that no guarding was asserted. *)
let baseline_sign ?(key = default_key) ?(signer = default_signer) () =
  [ Dce.pass (); Signing.pass ~key ~signer () ]

(** Compile (transform + sign) a module in place, returning the pass
    remarks. This is the "wrapper script around clang" entry point.
    [opt] selects the optimization level; the legacy [optimize] flag
    means [O_basic] and is ignored when [opt] is given. *)
let compile ?optimize ?opt ?key ?signer ?config ?guard_intrinsics ?guard_cfi
    ?strict m =
  let opt =
    match (opt, optimize) with
    | Some o, _ -> o
    | None, Some true -> O_basic
    | None, _ -> O_none
  in
  let pipeline =
    kop ?key ?signer ?config ?guard_intrinsics ?guard_cfi ?strict ~opt ()
  in
  Pass.run_pipeline_checked pipeline m

(** Re-optimize an already compiled (guarded) module in place: run the
    requested optimization tier, then re-certify and re-sign so the
    loader's checks hold on the transformed body. Used by the loader
    CLI's [--opt] to upgrade a vendor-shipped module at insertion time;
    a no-op (and no re-signing) at [O_none]. *)
let reoptimize ?(key = default_key) ?(signer = default_signer)
    ?(guard_symbol = Guard_injection.guard_symbol_default) ~opt m =
  match opt with
  | O_none -> []
  | O_basic | O_aggressive ->
    let ps =
      [ Guard_elim.pass ~guard_symbol (); Guard_hoist.pass ~guard_symbol () ]
      @ (match opt with O_aggressive -> optimizer_passes () | _ -> [])
      @ certify_passes ()
      @ [ Signing.pass ~key ~signer () ]
    in
    Pass.run_pipeline_checked ps m
