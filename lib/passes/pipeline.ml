(** Canonical pass pipelines.

    [kop_default] is the paper's compiler: attest, inject a guard before
    every load/store with no optimization, certify, sign.

    [kop_optimized] adds the CARAT-CAKE-style guard optimizations the
    paper deliberately omits (redundant-guard elimination and loop-
    invariant hoisting); used by the [abl-opt] ablation.

    [baseline] only signs — the untransformed module for A/B runs.

    The guard-completeness certifier lives one library above this one
    ([Analysis.Certify]); it registers itself through {!set_certifier}
    at module-initialization time, and both kop pipelines run it right
    before signing so the certificate ends up under the signature. *)

let default_key = "kop-vendor-key"
let default_signer = "kop-ocaml"

(* §5 extensions, off by default to stay faithful to the paper's
   prototype: intrinsic guarding and indirect-call (CFI) guarding *)
let extension_passes ~guard_intrinsics ~guard_cfi =
  (if guard_intrinsics then [ Intrinsic_guard.pass () ] else [])
  @ if guard_cfi then [ Cfi_guard.pass () ] else []

(* the certifier pass constructor, registered by Analysis.Certify; kept
   as a ref because the analysis library depends on this one *)
let certifier : (unit -> Pass.t) option ref = ref None
let set_certifier mk = certifier := Some mk
let certify_passes () = match !certifier with Some mk -> [ mk () ] | None -> []

(* in strict mode the attestation verdict must hold on the *final*
   module — after the CFI extension had its chance to cover indirect
   calls — so the strict scan runs as a late re-check *)
let strict_recheck ~strict =
  if strict then [ Attest.pass ~strict:true () ] else []

let kop_default ?(key = default_key) ?(signer = default_signer)
    ?(config = Guard_injection.default_config) ?(guard_intrinsics = false)
    ?(guard_cfi = false) ?(strict = false) () =
  [ Dce.pass (); Attest.pass (); Guard_injection.pass ~config () ]
  @ extension_passes ~guard_intrinsics ~guard_cfi
  @ strict_recheck ~strict @ certify_passes ()
  @ [ Signing.pass ~key ~signer () ]

let kop_optimized ?(key = default_key) ?(signer = default_signer)
    ?(config = Guard_injection.default_config) ?(guard_intrinsics = false)
    ?(guard_cfi = false) ?(strict = false) () =
  [
    Dce.pass ();
    Attest.pass ();
    Guard_injection.pass ~config ();
    Guard_elim.pass ~guard_symbol:config.Guard_injection.guard_symbol ();
    Guard_hoist.pass ~guard_symbol:config.Guard_injection.guard_symbol ();
  ]
  @ extension_passes ~guard_intrinsics ~guard_cfi
  @ strict_recheck ~strict @ certify_passes ()
  @ [ Signing.pass ~key ~signer () ]

(** Sign without transforming: used for baseline modules so that the
    loader accepts them in permissive mode while A/B tests can still
    detect that no guarding was asserted. *)
let baseline_sign ?(key = default_key) ?(signer = default_signer) () =
  [ Dce.pass (); Signing.pass ~key ~signer () ]

(** Compile (transform + sign) a module in place, returning the pass
    remarks. This is the "wrapper script around clang" entry point. *)
let compile ?(optimize = false) ?key ?signer ?config ?guard_intrinsics
    ?guard_cfi ?strict m =
  let pipeline =
    if optimize then
      kop_optimized ?key ?signer ?config ?guard_intrinsics ?guard_cfi ?strict ()
    else kop_default ?key ?signer ?config ?guard_intrinsics ?guard_cfi ?strict ()
  in
  Pass.run_pipeline_checked pipeline m
