(** Compiler attestation (§2, §5 of the paper).

    The CARAT KOP compilation process asserts, as part of what gets
    signed, that the module "does not include any problematic elements
    such as inline or separate assembly". This pass scans for such
    elements and either fails compilation or records the findings:

    - {b inline assembly} ([Inline_asm]) — always fatal: the compiler
      cannot see through it, so guards cannot be certified;
    - {b indirect calls} ([Callind]) — control-flow escape hatches. The
      paper notes CARAT KOP does not yet provide CFI (§5), so these are
      allowed by default but counted and recorded in metadata. Strict
      mode accepts an indirect call when (and only when) the
      {!Cfi_guard} instrumentation covers it: the call is immediately
      preceded by a [carat_cfi_guard] on the same target operand. *)

open Kir.Types

type finding = { in_func : string; what : string }

type report = {
  inline_asm : finding list;
  indirect_calls : finding list;
  uncovered_indirect : finding list;
      (** indirect calls with no immediately-preceding [carat_cfi_guard]
          on the same target *)
  intrinsics : finding list;
}

let scan (m : modul) : report =
  let asm = ref [] and ind = ref [] and unc = ref [] and intr = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          let prev = ref None in
          List.iter
            (fun i ->
              (match i with
              | Inline_asm s ->
                asm := { in_func = f.f_name; what = s } :: !asm
              | Callind { fn; _ } ->
                ind := { in_func = f.f_name; what = "indirect call" } :: !ind;
                let covered =
                  match !prev with
                  | Some (Call { callee; args = [ t ]; _ }) ->
                    callee = Cfi_guard.guard_symbol && t = fn
                  | _ -> false
                in
                if not covered then
                  unc :=
                    { in_func = f.f_name; what = "indirect call without cfi_guard" }
                    :: !unc
              | Intrinsic { iname; _ } ->
                intr := { in_func = f.f_name; what = iname } :: !intr
              | _ -> ());
              prev := Some i)
            b.body)
        f.blocks)
    m.funcs;
  {
    inline_asm = List.rev !asm;
    indirect_calls = List.rev !ind;
    uncovered_indirect = List.rev !unc;
    intrinsics = List.rev !intr;
  }

let meta_noasm = "carat.kop.attest.noasm"
let meta_indirect = "carat.kop.attest.indirect_calls"
let meta_indirect_uncovered = "carat.kop.attest.indirect_uncovered"
let meta_intrinsics = "carat.kop.attest.intrinsics"

(** The guard-completeness certificate ({!Analysis.Certify}) is stored
    here. The key is declared in this library so {!Signing} can cover
    it without depending on the analysis layer. *)
let meta_cert = "carat.kop.cert"

let run ~strict (m : modul) : Pass.result =
  let r = scan m in
  (match r.inline_asm with
  | [] -> ()
  | { in_func; what } :: _ ->
    Pass.fail "attest" "inline assembly in @%s (%S); module cannot be certified"
      in_func what);
  if strict && r.uncovered_indirect <> [] then begin
    let f = List.hd r.uncovered_indirect in
    Pass.fail "attest"
      "indirect call in @%s without cfi_guard rejected in strict mode"
      f.in_func
  end;
  meta_set m meta_noasm "true";
  meta_set m meta_indirect (string_of_int (List.length r.indirect_calls));
  meta_set m meta_indirect_uncovered
    (string_of_int (List.length r.uncovered_indirect));
  meta_set m meta_intrinsics (string_of_int (List.length r.intrinsics));
  {
    changed = true;
    remarks =
      [
        ("indirect_calls", string_of_int (List.length r.indirect_calls));
        ("intrinsics", string_of_int (List.length r.intrinsics));
      ];
  }

let pass ?(strict = false) () = Pass.make "attest" (run ~strict)
