(** Code signing of transformed modules (§2: "the compilation process also
    performs cryptographic code signing ... used at load time to prove to
    the kernel that the proper processing has been performed, and by which
    compiler").

    We substitute real cryptography with a keyed FNV-1a construction
    (documented in DESIGN.md): tamper-evidence and provenance are what the
    protocol needs; the kernel's loader recomputes the tag over the
    canonical module body plus the transform metadata, and rejects
    mismatches, unsigned modules, and modules whose metadata claims no
    guarding. *)

open Kir.Types

(* -- keyed hash ---------------------------------------------------- *)

(* FNV-1a offset basis truncated to OCaml's 63-bit native int range *)
let fnv_offset = 0x3bf29ce484222325
let fnv_prime = 0x100000001b3

let fnv1a64 (s : string) : int =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * fnv_prime)
    s;
  !h land max_int

(** HMAC-style keyed tag: H(key ^ opad || H(key ^ ipad || msg)), widened
    to 128 bits by hashing with two different seeds. *)
let keyed_tag ~key msg =
  let inner = fnv1a64 (key ^ "\x36\x36\x36\x36" ^ msg) in
  let outer = fnv1a64 (key ^ "\x5c\x5c\x5c\x5c" ^ Printf.sprintf "%016x" inner) in
  let second = fnv1a64 (Printf.sprintf "%016x" outer ^ msg ^ key) in
  Printf.sprintf "%016x%016x" outer second

(* -- signing protocol ---------------------------------------------- *)

let meta_sig = "carat.kop.sig"
let meta_signer = "carat.kop.signer"

(** The transform metadata covered by the signature. Signing the guard
    count and compiler identity is what makes the signature an assertion
    "that the proper processing has been performed, and by which
    compiler". *)
let covered_meta_keys =
  [
    Guard_injection.meta_guarded;
    Guard_injection.meta_guard_count;
    Guard_injection.meta_guard_symbol;
    Guard_injection.meta_guard_reads;
    Guard_injection.meta_guard_writes;
    Guard_injection.meta_exempt_stack;
    Guard_injection.meta_opt_level;
    Guard_injection.meta_compiler;
    Attest.meta_noasm;
    Attest.meta_indirect;
    Attest.meta_indirect_uncovered;
    Attest.meta_intrinsics;
    Attest.meta_cert;
    Intrinsic_guard.meta_guarded;
    Intrinsic_guard.meta_count;
    Cfi_guard.meta_guarded;
    Cfi_guard.meta_count;
  ]

let signable_text (m : modul) : string =
  let body = Kir.Printer.to_string ~with_meta:false m in
  let meta =
    List.map
      (fun k ->
        Printf.sprintf "%s=%s" k
          (match meta_find m k with Some v -> v | None -> "<absent>"))
      covered_meta_keys
  in
  body ^ "\n" ^ String.concat "\n" meta

let sign ~key ~signer (m : modul) : string =
  let tag = keyed_tag ~key (signable_text m) in
  meta_set m meta_sig tag;
  meta_set m meta_signer signer;
  tag

type verify_error =
  | Unsigned
  | Bad_signature of { expected : string; found : string }
  | Not_guarded
  | Not_attested

let verify_error_to_string = function
  | Unsigned -> "module carries no signature"
  | Bad_signature { expected; found } ->
    Printf.sprintf "signature mismatch (expected %s, found %s)" expected found
  | Not_guarded -> "module metadata does not assert guard injection"
  | Not_attested -> "module metadata does not assert inline-asm attestation"

(** Full load-time validation: signature present and correct under [key],
    and the signed metadata asserts both guarding and attestation. *)
let verify ~key (m : modul) : (unit, verify_error) result =
  match meta_find m meta_sig with
  | None -> Error Unsigned
  | Some found ->
    let expected = keyed_tag ~key (signable_text m) in
    if not (String.equal expected found) then
      Error (Bad_signature { expected; found })
    else if meta_find m Guard_injection.meta_guarded <> Some "true" then
      Error Not_guarded
    else if meta_find m Attest.meta_noasm <> Some "true" then
      Error Not_attested
    else Ok ()

let pass ~key ~signer () =
  Pass.make "sign" (fun m ->
      let tag = sign ~key ~signer m in
      { Pass.changed = true; remarks = [ ("signature", tag) ] })
