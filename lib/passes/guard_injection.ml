(** The CARAT KOP transform: insert a call to the guard function before
    every load and store in the module (§3.3 of the paper).

    The paper's pass "simply iterates over each load/store operation and
    inserts a call to the guard function before" — no analysis, no
    optimization, every access guarded even when redundant. This module
    reproduces that exactly (about 200 lines, like the C++ original), plus
    one optional refinement the paper mentions relying on paging for:
    [exempt_stack] skips accesses provably confined to the module's own
    stack frame.

    The guard callback signature extends the paper's
    [carat_guard(void *addr, size_t size, int access_flags)] with a
    fourth, compiler-assigned argument: a small integer *site id*, unique
    per static guard call within the module and assigned in deterministic
    program order. The policy module uses it to key per-guard-site inline
    caches; it carries no policy meaning, so legacy 3-argument callers
    remain valid (the policy module treats them as site -1, uncached). *)

open Kir.Types

let guard_symbol_default = "carat_guard"

(* access_flags bitmap, shared with the policy module *)
let flag_read = 1
let flag_write = 2

type config = {
  guard_symbol : string;
  guard_reads : bool;
  guard_writes : bool;
  exempt_stack : bool;
      (** skip guards on addresses derived only from this frame's allocas *)
}

let default_config =
  {
    guard_symbol = guard_symbol_default;
    guard_reads = true;
    guard_writes = true;
    exempt_stack = false;
  }

(** Registers of [f] that only ever hold addresses derived from this
    function's own allocas (via gep/mov chains). Flow-insensitive and
    conservative: a register with any non-stack-derived definition is
    excluded. *)
let stack_pure_regs (f : func) : (reg, unit) Hashtbl.t =
  let defs : (reg, instr list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match def_of_instr i with
          | Some r ->
            let prev = try Hashtbl.find defs r with Not_found -> [] in
            Hashtbl.replace defs r (i :: prev)
          | None -> ())
        b.body)
    f.blocks;
  (* parameters are never stack-pure: they come from outside the frame *)
  let pure = Hashtbl.create 64 in
  let value_pure = function
    | Reg r -> Hashtbl.mem pure r
    | Imm _ | Sym _ -> false
  in
  let def_pure = function
    | Alloca _ -> true
    | Gep { base; _ } -> value_pure base
    | Mov { src = Reg r; _ } -> Hashtbl.mem pure r
    | _ -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun r dlist ->
        if (not (Hashtbl.mem pure r)) && dlist <> [] && List.for_all def_pure dlist
        then begin
          Hashtbl.replace pure r ();
          changed := true
        end)
      defs
  done;
  (* a register is only trustworthy if no definition is impure; the
     fixed-point above only ever adds fully-pure registers, so we are
     done *)
  pure

let guard_call cfg addr size flags site =
  Call
    {
      dst = None;
      callee = cfg.guard_symbol;
      args = [ addr; Imm size; Imm flags; Imm site ];
    }

(** Instrument one function; returns the number of guards inserted.
    [next_site] is the module-wide site-id counter: each inserted guard
    consumes one id, in deterministic (function, block, instruction)
    order, so rebuilding the same module yields the same ids. *)
let instrument_func cfg ~next_site (f : func) : int =
  let pure = if cfg.exempt_stack then stack_pure_regs f else Hashtbl.create 1 in
  let exempt = function
    | Reg r -> cfg.exempt_stack && Hashtbl.mem pure r
    | Imm _ | Sym _ -> false
  in
  let count = ref 0 in
  let take_site () =
    let s = !next_site in
    incr next_site;
    s
  in
  List.iter
    (fun b ->
      let body' =
        List.concat_map
          (fun i ->
            match i with
            | Load { ty; addr; _ } when cfg.guard_reads && not (exempt addr) ->
              incr count;
              [ guard_call cfg addr (size_of_ty ty) flag_read (take_site ()); i ]
            | Store { ty; addr; _ } when cfg.guard_writes && not (exempt addr)
              ->
              incr count;
              [
                guard_call cfg addr (size_of_ty ty) flag_write (take_site ());
                i;
              ]
            | i -> [ i ])
          b.body
      in
      b.body <- body')
    f.blocks;
  !count

let meta_guarded = "carat.kop.guarded"
let meta_guard_count = "carat.kop.guards"
let meta_guard_sites = "carat.kop.guard_sites"
let meta_guard_symbol = "carat.kop.guard_symbol"
let meta_compiler = "carat.kop.compiler"

(* the injection configuration, recorded (and signed) so the
   load-time certifier re-checks the module under the same promises
   the compiler actually made *)
let meta_guard_reads = "carat.kop.guard_reads"
let meta_guard_writes = "carat.kop.guard_writes"
let meta_exempt_stack = "carat.kop.guard_exempt_stack"

(* the guard-optimization level the module was compiled at, recorded by
   the certified optimizer ([Analysis.Optimize]) and signed: the
   certifier widens its analysis (interprocedural summaries, loop
   ranges) only for modules that honestly declare aggressive
   optimization, so unoptimized modules keep the paper's strictly
   intraprocedural proof obligations *)
let meta_opt_level = "carat.kop.opt"
let compiler_version = "kop-ocaml-1.1 (kir, guard sites)"

(** Arity of the guard import the pass emits (addr, size, flags, site). *)
let guard_arity = 4

let run cfg (m : modul) : Pass.result =
  if meta_find m meta_guarded = Some "true" then
    Pass.fail "guard-injection" "module %s is already guarded" m.m_name;
  let next_site = ref 0 in
  let total =
    List.fold_left (fun n f -> n + instrument_func cfg ~next_site f) 0 m.funcs
  in
  if not (List.mem_assoc cfg.guard_symbol m.externs) then
    m.externs <- m.externs @ [ (cfg.guard_symbol, guard_arity) ];
  let string_of_bool' b = if b then "true" else "false" in
  meta_set m meta_guarded "true";
  meta_set m meta_guard_count (string_of_int total);
  meta_set m meta_guard_sites (string_of_int !next_site);
  meta_set m meta_guard_symbol cfg.guard_symbol;
  meta_set m meta_guard_reads (string_of_bool' cfg.guard_reads);
  meta_set m meta_guard_writes (string_of_bool' cfg.guard_writes);
  meta_set m meta_exempt_stack (string_of_bool' cfg.exempt_stack);
  meta_set m meta_compiler compiler_version;
  { changed = total > 0; remarks = [ ("guards", string_of_int total) ] }

let pass ?(config = default_config) () =
  Pass.make "guard-injection" (run config)

(** Static count of guard calls currently present in the module. *)
let count_guards ?(guard_symbol = guard_symbol_default) (m : modul) =
  let in_block b =
    List.fold_left
      (fun n i ->
        match i with
        | Call { callee; _ } when callee = guard_symbol -> n + 1
        | _ -> n)
      0 b.body
  in
  List.fold_left
    (fun n f -> n + List.fold_left (fun n b -> n + in_block b) 0 f.blocks)
    0 m.funcs

(** Check the central transform invariant: every load/store is immediately
    preceded by a guard call for the same address operand (used by tests
    and by the loader's deep-validation mode). Optimized modules violate
    the "immediately preceded" form, so this is only asserted for the
    unoptimized pipeline. *)
let fully_guarded ?(guard_symbol = guard_symbol_default) (m : modul) : bool =
  let block_ok b =
    let rec go prev body =
      match body with
      | [] -> true
      | (Load { addr; _ } as i) :: rest | (Store { addr; _ } as i) :: rest ->
        let guarded =
          match prev with
          | Some (Call { callee; args = a :: _; _ }) ->
            callee = guard_symbol && a = addr
          | _ -> false
        in
        guarded && go (Some i) rest
      | i :: rest -> go (Some i) rest
    in
    go None b.body
  in
  List.for_all (fun f -> List.for_all block_ok f.blocks) m.funcs
