(** Guard coalescing — merge adjacent or overlapping byte guards on the
    same base value into one wider guard.

    Within a basic block, between two policy-relevant calls (anything
    that is not the guard itself — such a call could swap the table, so
    merging across it would check under the wrong policy), guards whose
    addresses normalize to the same symbolic core merge when

    - their byte intervals overlap or touch and their flags are equal
      (the union is contiguous: the merged guard checks exactly the
      bytes the originals checked, no gap-filling); or
    - their byte intervals are identical and only the flags differ (the
      merged rw check is the conjunction of the original checks).

    The survivor is the earliest guard of the group, so the widened
    check still precedes every access the deleted members covered; when
    the merged interval starts below the survivor's own offset, a [Gep]
    with a (possibly negative) immediate rebases its address.

    Normalization is the same local value numbering {!Guard_elim} uses,
    extended to peel constant-index geps into byte offsets, so the five
    descriptor-field stores of the e1000e transmit path (addr/len/cso/
    cmd/sta at bytes 0..13 of one descriptor) collapse to a single
    13-byte write guard.

    Under an object-granular policy — one where a single allocation is
    never split across regions with different protections — the merged
    check makes exactly the decisions the originals made (see DESIGN.md,
    "certified optimization contract"); {!Analysis.Certify} re-proves
    coverage after the pass in any case. *)

open Kir.Types

(* local value numbering, as in Guard_elim *)
type vnum =
  | V_imm of int
  | V_sym of string
  | V_param of reg
  | V_gep of vnum * vnum * int
  | V_opaque of int

let rec v_to_string = function
  | V_imm n -> string_of_int n
  | V_sym s -> "@" ^ s
  | V_param r -> r
  | V_gep (b, i, s) ->
    Printf.sprintf "(%s + %s*%d)" (v_to_string b) (v_to_string i) s
  | V_opaque n -> Printf.sprintf "v%d" n

(** Peel constant-index geps into a (core, byte offset) pair — the
    structural key two guards must share to be mergeable. *)
let rec norm = function
  | V_gep (b, V_imm n, scale) ->
    let core, off = norm b in
    (core, off + (n * scale))
  | v -> (v, 0)

(** One guard occurrence inside a merge window. *)
type occ = {
  o_idx : int;  (** index in the block body *)
  o_lo : int;
  o_hi : int;
  o_flags : int;
  o_site : int;  (** -1 for the 3-argument form *)
  o_addr : value;  (** original address operand *)
  o_off : int;  (** byte offset that operand denotes, relative to core *)
}

(** A merge group: [g_occs] (earliest first) collapse into one guard
    covering [\[g_lo, g_hi)] with [g_flags]. *)
type group = {
  g_core : vnum;
  g_occs : occ list;
  g_lo : int;
  g_hi : int;
  g_flags : int;
}

type candidate = {
  c_func : string;
  c_block : label;
  c_addr : string;  (** printable core *)
  c_sites : int list;
  c_lo : int;
  c_hi : int;
  c_flags : int;
  c_count : int;
}

let parse_guard ~guard_symbol = function
  | Call { callee; args = [ addr; Imm size; Imm flags ]; dst = None }
    when callee = guard_symbol && size > 0 ->
    Some (addr, size, flags, -1)
  | Call { callee; args = [ addr; Imm size; Imm flags; Imm site ]; dst = None }
    when callee = guard_symbol && size > 0 ->
    Some (addr, size, flags, site)
  | _ -> None

(* cluster the guard occurrences of one (core, window): first union the
   flags of identical intervals, then sweep same-flag occurrences in
   interval order merging overlap/adjacency *)
let cluster core (occs : occ list) : group list =
  (* 1: identical intervals, flags OR'd *)
  let by_iv = Hashtbl.create 8 in
  List.iter
    (fun o ->
      let k = (o.o_lo, o.o_hi) in
      let prev = try Hashtbl.find by_iv k with Not_found -> [] in
      Hashtbl.replace by_iv k (o :: prev))
    occs;
  let units =
    Hashtbl.fold
      (fun (lo, hi) os acc ->
        let os = List.sort (fun a b -> compare a.o_idx b.o_idx) os in
        let flags = List.fold_left (fun f o -> f lor o.o_flags) 0 os in
        { g_core = core; g_occs = os; g_lo = lo; g_hi = hi; g_flags = flags }
        :: acc)
      by_iv []
  in
  (* 2: per flag value, sweep in lo order and merge contiguous unions *)
  let by_flags = Hashtbl.create 4 in
  List.iter
    (fun u ->
      let prev = try Hashtbl.find by_flags u.g_flags with Not_found -> [] in
      Hashtbl.replace by_flags u.g_flags (u :: prev))
    units;
  Hashtbl.fold
    (fun _flags us acc ->
      let us = List.sort (fun a b -> compare (a.g_lo, a.g_hi) (b.g_lo, b.g_hi)) us in
      let merged =
        List.fold_left
          (fun done_ u ->
            match done_ with
            | cur :: rest when u.g_lo <= cur.g_hi ->
              {
                cur with
                g_occs = cur.g_occs @ u.g_occs;
                g_hi = max cur.g_hi u.g_hi;
              }
              :: rest
            | _ -> u :: done_)
          [] us
      in
      merged @ acc)
    by_flags []
  |> List.map (fun g ->
         {
           g with
           g_occs = List.sort (fun a b -> compare a.o_idx b.o_idx) g.g_occs;
         })

(** Scan one block: windows end at any call that is not the guard itself
    (and at inline asm), exactly the envelope {!Guard_elim} assumes. *)
let block_groups ~guard_symbol (b : block) : group list =
  let values : (reg, vnum) Hashtbl.t = Hashtbl.create 32 in
  let fresh = ref 0 in
  let next_opaque () =
    incr fresh;
    V_opaque !fresh
  in
  let value_of = function
    | Imm n -> V_imm n
    | Sym s -> V_sym s
    | Reg r -> (
      match Hashtbl.find_opt values r with
      | Some v -> v
      | None ->
        let v = V_param r in
        Hashtbl.replace values r v;
        v)
  in
  let windows = ref [] in
  let open_w : (vnum, occ list ref) Hashtbl.t = Hashtbl.create 8 in
  let close_all () =
    Hashtbl.iter (fun core os -> windows := (core, List.rev !os) :: !windows) open_w;
    Hashtbl.reset open_w
  in
  List.iteri
    (fun idx i ->
      match parse_guard ~guard_symbol i with
      | Some (addr, size, flags, site) ->
        let core, off = norm (value_of addr) in
        let o =
          {
            o_idx = idx;
            o_lo = off;
            o_hi = off + size;
            o_flags = flags;
            o_site = site;
            o_addr = addr;
            o_off = off;
          }
        in
        (match Hashtbl.find_opt open_w core with
        | Some os -> os := o :: !os
        | None -> Hashtbl.replace open_w core (ref [ o ]))
      | None -> (
        (match i with
        | Call _ | Callind _ | Inline_asm _ -> close_all ()
        | _ -> ());
        (match i with
        | Mov { dst; src; _ } -> Hashtbl.replace values dst (value_of src)
        | Gep { dst; base; idx = gidx; scale } ->
          Hashtbl.replace values dst
            (V_gep (value_of base, value_of gidx, scale))
        | _ -> (
          match def_of_instr i with
          | Some r -> Hashtbl.replace values r (next_opaque ())
          | None -> ()))))
    b.body;
  close_all ();
  List.concat_map (fun (core, os) -> cluster core os) !windows

(** Merge groups the optimizer would collapse, without transforming —
    feeds the [W-coalescable-guard] lint. *)
let candidates ?(guard_symbol = Guard_injection.guard_symbol_default)
    (m : modul) : candidate list =
  List.concat_map
    (fun f ->
      List.concat_map
        (fun b ->
          block_groups ~guard_symbol b
          |> List.filter (fun g -> List.length g.g_occs > 1)
          |> List.map (fun g ->
                 {
                   c_func = f.f_name;
                   c_block = b.b_label;
                   c_addr = v_to_string g.g_core;
                   c_sites = List.map (fun o -> o.o_site) g.g_occs;
                   c_lo = g.g_lo;
                   c_hi = g.g_hi;
                   c_flags = g.g_flags;
                   c_count = List.length g.g_occs;
                 }))
        f.blocks)
    m.funcs

let all_regs f =
  let s = Hashtbl.create 64 in
  List.iter (fun (r, _) -> Hashtbl.replace s r ()) f.params;
  List.iter
    (fun b ->
      List.iter
        (fun i ->
          match def_of_instr i with
          | Some r -> Hashtbl.replace s r ()
          | None -> ())
        b.body)
    f.blocks;
  s

let run ~guard_symbol (m : modul) : Pass.result =
  let merged = ref 0 in
  let process_func f =
    let taken = all_regs f in
    let fresh_ctr = ref 0 in
    let fresh_reg () =
      let rec go () =
        incr fresh_ctr;
        let r = Printf.sprintf "%%__co%d" !fresh_ctr in
        if Hashtbl.mem taken r then go ()
        else begin
          Hashtbl.replace taken r ();
          r
        end
      in
      go ()
    in
    let process_block b =
      let groups =
        block_groups ~guard_symbol b
        |> List.filter (fun g -> List.length g.g_occs > 1)
      in
      if groups <> [] then begin
        (* idx -> what happens to the instruction there *)
        let drop = Hashtbl.create 16 in
        let rewrite = Hashtbl.create 16 in
        List.iter
          (fun g ->
            match g.g_occs with
            | leader :: rest ->
              merged := !merged + List.length rest;
              List.iter (fun o -> Hashtbl.replace drop o.o_idx ()) rest;
              let size = g.g_hi - g.g_lo in
              let addr, prefix =
                if g.g_lo = leader.o_off then (leader.o_addr, [])
                else
                  let r = fresh_reg () in
                  ( Reg r,
                    [
                      Gep
                        {
                          dst = r;
                          base = leader.o_addr;
                          idx = Imm (g.g_lo - leader.o_off);
                          scale = 1;
                        };
                    ] )
              in
              let args =
                if leader.o_site < 0 then [ addr; Imm size; Imm g.g_flags ]
                else [ addr; Imm size; Imm g.g_flags; Imm leader.o_site ]
              in
              Hashtbl.replace rewrite leader.o_idx
                (prefix @ [ Call { dst = None; callee = guard_symbol; args } ])
            | [] -> ())
          groups;
        b.body <-
          List.concat
            (List.mapi
               (fun idx i ->
                 if Hashtbl.mem drop idx then []
                 else
                   match Hashtbl.find_opt rewrite idx with
                   | Some is -> is
                   | None -> [ i ])
               b.body)
      end
    in
    List.iter process_block f.blocks
  in
  List.iter process_func m.funcs;
  {
    Pass.changed = !merged > 0;
    remarks = [ ("guards_merged", string_of_int !merged) ];
  }

let pass ?(guard_symbol = Guard_injection.guard_symbol_default) () =
  Pass.make "guard-coalesce" (run ~guard_symbol)
