(** Redundant-guard elimination — the first of the CARAT-CAKE-style guard
    optimizations that the paper deliberately leaves out of CARAT KOP
    (§3.3) but speculates about. We implement it for the ablation
    benchmark [abl-opt].

    Within a basic block, a guard call [carat_guard(a, s, fl)] is
    redundant if earlier guards in the same block already covered the
    same address *value* with at least the same size for every access
    kind in [fl], provided no non-guard call intervened (a call could
    reach the policy module and change the table; dropping the later
    guard would then be unsound). Coverage is tracked per access kind:
    a 4-byte read guard followed by a 1-byte write guard does NOT
    license dropping a 4-byte write guard — only 1 byte was ever
    write-checked, so the sizes must never be merged across kinds.

    "Same address value" is decided by local value numbering: [mov] and
    [gep] chains are resolved symbolically, so two guards whose addresses
    are recomputed through different registers (e.g. two [gep adapter,
    40] sequences) still deduplicate. Every other definition gets a fresh
    opaque number, which also makes register redefinition safe. *)

open Kir.Types

(* bytes proven checked at an address value, per access kind *)
type seen = { rsize : int; wsize : int }

(* symbolic value for local value numbering *)
type sym_value =
  | V_imm of int
  | V_sym of string
  | V_gep of sym_value * sym_value * int
  | V_opaque of int

let rec sym_to_key = function
  | V_imm n -> "i" ^ string_of_int n
  | V_sym s -> "s" ^ s
  | V_gep (b, i, s) ->
    Printf.sprintf "g(%s,%s,%d)" (sym_to_key b) (sym_to_key i) s
  | V_opaque n -> "o" ^ string_of_int n

let run ~guard_symbol (m : modul) : Pass.result =
  let removed = ref 0 in
  let fresh = ref 0 in
  let next_opaque () =
    incr fresh;
    V_opaque !fresh
  in
  let process_block b =
    let values : (reg, sym_value) Hashtbl.t = Hashtbl.create 32 in
    let value_of = function
      | Imm n -> V_imm n
      | Sym s -> V_sym s
      | Reg r -> (
        match Hashtbl.find_opt values r with
        | Some v -> v
        | None ->
          let v = next_opaque () in
          Hashtbl.replace values r v;
          v)
    in
    let seen : (string, seen) Hashtbl.t = Hashtbl.create 16 in
    let keep i =
      match i with
      (* both guard forms: legacy (addr, size, flags) and the site-id
         carrying (addr, size, flags, site) — the site does not affect
         coverage, so it is ignored for redundancy purposes *)
      | Call { callee; args = [ addr; Imm size; Imm flags ]; dst = None }
      | Call
          { callee; args = [ addr; Imm size; Imm flags; Imm _ ]; dst = None }
        when callee = guard_symbol -> (
        let key = sym_to_key (value_of addr) in
        let wants_read = flags land Guard_injection.flag_read <> 0 in
        let wants_write = flags land Guard_injection.flag_write <> 0 in
        let prev =
          Option.value
            (Hashtbl.find_opt seen key)
            ~default:{ rsize = 0; wsize = 0 }
        in
        if
          ((not wants_read) || prev.rsize >= size)
          && ((not wants_write) || prev.wsize >= size)
        then begin
          incr removed;
          false
        end
        else begin
          Hashtbl.replace seen key
            {
              rsize = (if wants_read then max prev.rsize size else prev.rsize);
              wsize = (if wants_write then max prev.wsize size else prev.wsize);
            };
          true
        end)
      | Call _ | Callind _ ->
        (* unknown call: conservatively forget guard coverage (the policy
           could have changed); value numbering stays valid *)
        Hashtbl.reset seen;
        (match def_of_instr i with
        | Some r -> Hashtbl.replace values r (next_opaque ())
        | None -> ());
        true
      | Mov { dst; src; _ } ->
        Hashtbl.replace values dst (value_of src);
        true
      | Gep { dst; base; idx; scale } ->
        Hashtbl.replace values dst (V_gep (value_of base, value_of idx, scale));
        true
      | _ ->
        (match def_of_instr i with
        | Some r -> Hashtbl.replace values r (next_opaque ())
        | None -> ());
        true
    in
    b.body <- List.filter keep b.body
  in
  List.iter (fun f -> List.iter process_block f.blocks) m.funcs;
  {
    Pass.changed = !removed > 0;
    remarks = [ ("guards_removed", string_of_int !removed) ];
  }

let pass ?(guard_symbol = Guard_injection.guard_symbol_default) () =
  Pass.make "guard-elim" (run ~guard_symbol)
