(* Machine model: PRNG, caches, branch predictor, cost model, presets. *)

open Carat_kop

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ---------- rng ---------- *)

let test_rng_deterministic () =
  let a = Machine.Rng.create 42 and b = Machine.Rng.create 42 in
  for _ = 1 to 100 do
    checki "same stream" (Machine.Rng.next a) (Machine.Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Machine.Rng.create 1 and b = Machine.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Machine.Rng.next a <> Machine.Rng.next b then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_rng_bounds () =
  let r = Machine.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Machine.Rng.int r 17 in
    checkb "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let f = Machine.Rng.float r in
    checkb "unit interval" true (f >= 0.0 && f < 1.0)
  done

let test_rng_flip_bias () =
  let r = Machine.Rng.create 9 in
  let n = 20000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Machine.Rng.flip r 0.25 then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  checkb "roughly 25%" true (frac > 0.22 && frac < 0.28)

let test_rng_jitter () =
  let r = Machine.Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Machine.Rng.jitter r ~mean:100 ~max:500 in
    checkb "jitter bounds" true (v >= 0 && v <= 500)
  done

let test_rng_split_independent () =
  let parent = Machine.Rng.create 5 in
  let c1 = Machine.Rng.split parent ~tag:1 in
  let c2 = Machine.Rng.split parent ~tag:2 in
  checkb "children differ" true (Machine.Rng.next c1 <> Machine.Rng.next c2)

(* ---------- cache ---------- *)

let mk_cache () =
  Machine.Cache.create ~name:"t" ~size_bytes:4096 ~assoc:2 ~line_size:64

let test_cache_miss_then_hit () =
  let c = mk_cache () in
  checkb "cold miss" false (Machine.Cache.access c 0x1000);
  checkb "warm hit" true (Machine.Cache.access c 0x1000);
  checkb "same line hit" true (Machine.Cache.access c 0x1030);
  checkb "different line miss" false (Machine.Cache.access c 0x2000)

let test_cache_eviction_lru () =
  let c = mk_cache () in
  (* 2-way set: three distinct tags in the same set evict the LRU *)
  let set_stride = 4096 / 2 in
  ignore (Machine.Cache.access c 0);
  ignore (Machine.Cache.access c set_stride);
  (* touch first again so the second is LRU *)
  ignore (Machine.Cache.access c 0);
  ignore (Machine.Cache.access c (2 * set_stride));
  checkb "first survives" true (Machine.Cache.access c 0);
  checkb "second evicted" false (Machine.Cache.access c set_stride)

let test_cache_stats_and_flush () =
  let c = mk_cache () in
  ignore (Machine.Cache.access c 0);
  ignore (Machine.Cache.access c 0);
  checkf "hit rate 0.5" 0.5 (Machine.Cache.hit_rate c);
  Machine.Cache.flush c;
  checkb "flushed" false (Machine.Cache.access c 0)

let test_cache_lines_touched () =
  let c = mk_cache () in
  checki "within line" 1 (Machine.Cache.lines_touched c 0 8);
  checki "straddles" 2 (Machine.Cache.lines_touched c 60 8);
  checki "big range" 3 (Machine.Cache.lines_touched c 0 129);
  checki "zero" 0 (Machine.Cache.lines_touched c 0 0)

let test_cache_perturb () =
  let c = mk_cache () in
  for i = 0 to 63 do
    ignore (Machine.Cache.access c (i * 64))
  done;
  let rng = Machine.Rng.create 3 in
  Machine.Cache.perturb c rng ~fraction:1.0;
  Machine.Cache.reset_stats c;
  let misses = ref 0 in
  for i = 0 to 63 do
    if not (Machine.Cache.access c (i * 64)) then incr misses
  done;
  checkb "perturbation caused misses" true (!misses > 0)

let test_cache_rejects_bad_geometry () =
  match
    Machine.Cache.create ~name:"bad" ~size_bytes:4096 ~assoc:2 ~line_size:48
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted non-power-of-two line size"

(* ---------- predictor ---------- *)

let test_predictor_learns_monotone () =
  let p = Machine.Predictor.create ~entries_log2:10 ~history_bits:8 in
  (* always-taken branch: after the global history saturates and the
     stable-index counter trains, it predicts perfectly *)
  for _ = 1 to 16 do
    ignore (Machine.Predictor.branch p ~pc:42 ~taken:true)
  done;
  Machine.Predictor.reset_stats p;
  for _ = 1 to 100 do
    ignore (Machine.Predictor.branch p ~pc:42 ~taken:true)
  done;
  checkf "perfect on monotone" 1.0 (Machine.Predictor.accuracy p)

let test_predictor_poor_on_random () =
  let p = Machine.Predictor.create ~entries_log2:10 ~history_bits:8 in
  let rng = Machine.Rng.create 13 in
  for _ = 1 to 2000 do
    ignore (Machine.Predictor.branch p ~pc:7 ~taken:(Machine.Rng.flip rng 0.5))
  done;
  checkb "well below perfect" true (Machine.Predictor.accuracy p < 0.8)

let test_predictor_clear () =
  let p = Machine.Predictor.create ~entries_log2:4 ~history_bits:4 in
  ignore (Machine.Predictor.branch p ~pc:1 ~taken:true);
  Machine.Predictor.clear p;
  checkf "reset accuracy" 1.0 (Machine.Predictor.accuracy p)

(* ---------- model ---------- *)

let mk_model () = Machine.Model.create Machine.Presets.r350

let test_model_retire_width () =
  let m = mk_model () in
  Machine.Model.retire m 8;
  (* 8 ops at width 4 -> 2 cycles *)
  checki "retire cycles" 2 (Machine.Model.cycles m)

let test_model_load_hierarchy () =
  let m = mk_model () in
  Machine.Model.load m 0x10000 8;
  let cold = Machine.Model.cycles m in
  let before = Machine.Model.cycles m in
  Machine.Model.load m 0x10000 8;
  let warm = Machine.Model.cycles m - before in
  checkb "cold costs more than warm" true (cold > warm)

let test_model_store_cheaper_than_miss_load () =
  let m = mk_model () in
  Machine.Model.load m 0x40000 8;
  let load_cost = Machine.Model.cycles m in
  let m2 = mk_model () in
  Machine.Model.store m2 0x40000 8;
  let store_cost = Machine.Model.cycles m2 in
  checkb "store buffered" true (store_cost < load_cost)

let test_model_branch_costs () =
  let m = mk_model () in
  (* train past the 16-bit history saturation point *)
  for _ = 1 to 40 do
    Machine.Model.branch m ~pc:5 ~taken:true
  done;
  let c0 = Machine.Model.cycles m in
  Machine.Model.branch m ~pc:5 ~taken:true;
  let predicted = Machine.Model.cycles m - c0 in
  let c1 = Machine.Model.cycles m in
  Machine.Model.branch m ~pc:5 ~taken:false;
  let mispredicted = Machine.Model.cycles m - c1 in
  checkb "mispredict costs more" true (mispredicted > predicted);
  checkb "mispredict at least penalty" true
    (mispredicted >= Machine.Presets.r350.Machine.Model.mispredict_penalty)

let test_model_memcpy_scales () =
  let m = mk_model () in
  Machine.Model.memcpy m ~dst:0x100000 ~src:0x200000 64;
  let small = Machine.Model.cycles m in
  let m2 = mk_model () in
  Machine.Model.memcpy m2 ~dst:0x100000 ~src:0x200000 4096;
  let big = Machine.Model.cycles m2 in
  checkb "larger copies cost more" true (big > 2 * small)

let test_model_mmio () =
  let m = mk_model () in
  Machine.Model.mmio m;
  checki "mmio read" Machine.Presets.r350.Machine.Model.mmio_latency
    (Machine.Model.cycles m);
  let m2 = mk_model () in
  Machine.Model.mmio_write m2;
  checkb "posted write cheaper" true
    (Machine.Model.cycles m2 < Machine.Model.cycles m)

let test_model_overlap () =
  let m = mk_model () in
  Machine.Model.with_overlap m (fun () -> Machine.Model.add_cycles m 100);
  let visible = Machine.Model.cycles m in
  checkb "discounted" true (visible < 100);
  checkb "not free" true (visible > 0)

let test_model_seconds () =
  let m = mk_model () in
  Machine.Model.add_cycles m 2_800_000_000;
  checkb "one second at 2.8GHz" true
    (abs_float (Machine.Model.seconds m -. 1.0) < 1e-6)

let test_model_snapshot_delta () =
  let m = mk_model () in
  let s0 = Machine.Model.snapshot m in
  Machine.Model.load m 0x1000 8;
  Machine.Model.store m 0x2000 8;
  Machine.Model.branch m ~pc:1 ~taken:true;
  let s1 = Machine.Model.snapshot m in
  let d = Machine.Model.delta s0 s1 in
  checki "loads" 1 d.Machine.Model.s_loads;
  checki "stores" 1 d.Machine.Model.s_stores;
  checki "branches" 1 d.Machine.Model.s_branches

(* ---------- presets ---------- *)

let test_presets_lookup () =
  checkb "r415" true (Machine.Presets.by_name "r415" <> None);
  checkb "r350" true (Machine.Presets.by_name "r350" <> None);
  checkb "unknown" true (Machine.Presets.by_name "r9000" = None);
  checki "two machines" 2 (List.length Machine.Presets.all)

let test_presets_relationship () =
  let a = Machine.Presets.r415 and b = Machine.Presets.r350 in
  checkb "r350 wider" true
    (b.Machine.Model.issue_width > a.Machine.Model.issue_width);
  checkb "r350 faster clock" true
    (b.Machine.Model.freq_ghz > a.Machine.Model.freq_ghz);
  checkb "r350 better predictor" true
    (b.Machine.Model.predictor_entries_log2 > a.Machine.Model.predictor_entries_log2);
  checkb "r350 hides more guard work" true
    (b.Machine.Model.speculative_overlap < a.Machine.Model.speculative_overlap)

let test_same_work_cheaper_on_r350 () =
  let work p =
    let m = Machine.Model.create p in
    Machine.Model.retire m 10000;
    for i = 0 to 200 do
      Machine.Model.load m (i * 64) 8;
      Machine.Model.branch m ~pc:(i land 7) ~taken:true
    done;
    Machine.Model.cycles m
  in
  checkb "r350 fewer cycles" true
    (work Machine.Presets.r350 < work Machine.Presets.r415)

let () =
  Alcotest.run "machine"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "flip bias" `Quick test_rng_flip_bias;
          Alcotest.test_case "jitter" `Quick test_rng_jitter;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
      ( "cache",
        [
          Alcotest.test_case "miss then hit" `Quick test_cache_miss_then_hit;
          Alcotest.test_case "LRU eviction" `Quick test_cache_eviction_lru;
          Alcotest.test_case "stats and flush" `Quick test_cache_stats_and_flush;
          Alcotest.test_case "lines touched" `Quick test_cache_lines_touched;
          Alcotest.test_case "perturb" `Quick test_cache_perturb;
          Alcotest.test_case "bad geometry" `Quick test_cache_rejects_bad_geometry;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "learns monotone" `Quick test_predictor_learns_monotone;
          Alcotest.test_case "poor on random" `Quick test_predictor_poor_on_random;
          Alcotest.test_case "clear" `Quick test_predictor_clear;
        ] );
      ( "model",
        [
          Alcotest.test_case "retire width" `Quick test_model_retire_width;
          Alcotest.test_case "load hierarchy" `Quick test_model_load_hierarchy;
          Alcotest.test_case "store buffering" `Quick test_model_store_cheaper_than_miss_load;
          Alcotest.test_case "branch costs" `Quick test_model_branch_costs;
          Alcotest.test_case "memcpy scales" `Quick test_model_memcpy_scales;
          Alcotest.test_case "mmio" `Quick test_model_mmio;
          Alcotest.test_case "overlap" `Quick test_model_overlap;
          Alcotest.test_case "seconds" `Quick test_model_seconds;
          Alcotest.test_case "snapshot delta" `Quick test_model_snapshot_delta;
        ] );
      ( "presets",
        [
          Alcotest.test_case "lookup" `Quick test_presets_lookup;
          Alcotest.test_case "relationship" `Quick test_presets_relationship;
          Alcotest.test_case "r350 beats r415" `Quick test_same_work_cheaper_on_r350;
        ] );
    ]
