(* VM: width-aware arithmetic, interpreter semantics, control flow,
   error paths. *)

open Carat_kop
open Kir.Types

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ---------- arith ---------- *)

let test_truncate () =
  checki "i8 wrap" 0x34 (Vm.Arith.truncate I8 0x1234);
  checki "i16 wrap" 0x5678 (Vm.Arith.truncate I16 0x345678);
  checki "i32 wrap" 0xFFFFFFFF (Vm.Arith.truncate I32 (-1));
  checki "i64 identity" (-1) (Vm.Arith.truncate I64 (-1))

let test_signed_views () =
  checki "i8 -1" (-1) (Vm.Arith.to_signed I8 0xFF);
  checki "i8 127" 127 (Vm.Arith.to_signed I8 0x7F);
  checki "i16 min" (-32768) (Vm.Arith.to_signed I16 0x8000);
  checki "i32 -2" (-2) (Vm.Arith.to_signed I32 0xFFFFFFFE);
  checki "i64 passthrough" (-5) (Vm.Arith.to_signed I64 (-5))

let test_binops () =
  checki "add wrap i8" 0 (Vm.Arith.binop I8 Add 0xFF 1);
  checki "sub" 5 (Vm.Arith.binop I64 Sub 8 3);
  checki "mul wrap i16" 0 (Vm.Arith.binop I16 Mul 0x100 0x100);
  checki "sdiv signed i8" (-2) (Vm.Arith.to_signed I8 (Vm.Arith.binop I8 Sdiv 0xFC 2));
  checki "srem" 1 (Vm.Arith.binop I64 Srem 7 3);
  checki "and" 0b100 (Vm.Arith.binop I64 And 0b110 0b101);
  checki "or" 0b111 (Vm.Arith.binop I64 Or 0b110 0b101);
  checki "xor" 0b011 (Vm.Arith.binop I64 Xor 0b110 0b101);
  checki "shl" 16 (Vm.Arith.binop I64 Shl 1 4);
  checki "shl out of range" 0 (Vm.Arith.binop I64 Shl 1 64);
  checki "lshr i32" 0x7FFFFFFF (Vm.Arith.binop I32 Lshr 0xFFFFFFFF 1);
  checki "ashr i8 sign fill" 0xFF (Vm.Arith.binop I8 Ashr 0x80 7)

let test_division_by_zero () =
  (match Vm.Arith.binop I64 Sdiv 1 0 with
  | exception Vm.Arith.Division_by_zero -> ()
  | _ -> Alcotest.fail "sdiv by zero");
  match Vm.Arith.binop I64 Srem 1 0 with
  | exception Vm.Arith.Division_by_zero -> ()
  | _ -> Alcotest.fail "srem by zero"

let test_compare () =
  let t cond ty a b = Vm.Arith.compare_values ty cond a b in
  checkb "eq" true (t Eq I64 5 5);
  checkb "ne" true (t Ne I64 5 6);
  checkb "slt signed i8" true (t Slt I8 0xFF 0) (* -1 < 0 *);
  checkb "ult unsigned i8" false (t Ult I8 0xFF 0) (* 255 !< 0 *);
  checkb "sge" true (t Sge I32 0 0xFFFFFFFF) (* 0 >= -1 *);
  checkb "ugt" true (t Ugt I32 0xFFFFFFFF 0);
  checkb "sle" true (t Sle I64 (-3) (-3));
  checkb "uge eq" true (t Uge I16 7 7)

let prop_arith_add_commutes =
  QCheck.Test.make ~name:"add commutes at every width" ~count:300
    QCheck.(triple (oneofl [I8; I16; I32; I64]) int int)
    (fun (ty, a, b) ->
      Vm.Arith.binop ty Add a b = Vm.Arith.binop ty Add b a)

let prop_arith_sub_inverse =
  QCheck.Test.make ~name:"x + y - y = x (mod width)" ~count:300
    QCheck.(triple (oneofl [I8; I16; I32]) int int)
    (fun (ty, x, y) ->
      let s = Vm.Arith.binop ty Add x y in
      Vm.Arith.binop ty Sub s y = Vm.Arith.truncate ty x)

(* ---------- interpreter ---------- *)

(* a kernel with no policy module: plain execution *)
let fresh () =
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
  let vm = Vm.Interp.install kernel in
  (kernel, vm)

let load_module kernel m =
  match Kernel.insmod kernel m with
  | Ok lm -> lm
  | Error e -> Alcotest.failf "insmod: %s" (Kernel.load_error_to_string e)

let simple_fn name build =
  let b = Kir.Builder.create (name ^ "_mod") in
  build b;
  Kir.Builder.modul b

let test_factorial () =
  let kernel, _ = fresh () in
  let m =
    simple_fn "fact" (fun b ->
        ignore
          (Kir.Builder.start_func b "fact" ~params:[ ("%n", I64) ]
             ~ret:(Some I64));
        let base = Kir.Builder.icmp b Sle I64 (Reg "%n") (Imm 1) in
        let bb = Kir.Builder.new_block b ~hint:"base" () in
        let rb = Kir.Builder.new_block b ~hint:"rec" () in
        Kir.Builder.cond_br b base ~if_true:bb ~if_false:rb;
        Kir.Builder.position_at b bb;
        Kir.Builder.ret b (Some (Imm 1));
        Kir.Builder.position_at b rb;
        let n1 = Kir.Builder.sub b I64 (Reg "%n") (Imm 1) in
        let r = Option.get (Kir.Builder.call b "fact" [ n1 ]) in
        let p = Kir.Builder.mul b I64 (Reg "%n") r in
        Kir.Builder.ret b (Some p))
  in
  ignore (load_module kernel m);
  checki "10!" 3628800 (Kernel.call_symbol kernel "fact" [| 10 |]);
  checki "0!" 1 (Kernel.call_symbol kernel "fact" [| 0 |])

let test_memory_roundtrip () =
  let kernel, _ = fresh () in
  let m =
    simple_fn "mem" (fun b ->
        ignore
          (Kir.Builder.start_func b "put_get"
             ~params:[ ("%p", I64); ("%v", I64) ]
             ~ret:(Some I64));
        Kir.Builder.store b I64 (Reg "%v") (Reg "%p");
        let r = Kir.Builder.load b I64 (Reg "%p") in
        Kir.Builder.ret b (Some r))
  in
  ignore (load_module kernel m);
  let buf = Kernel.kmalloc kernel ~size:8 in
  checki "store/load" 0xDEAD (Kernel.call_symbol kernel "put_get" [| buf; 0xDEAD |]);
  checki "persisted" 0xDEAD (Kernel.read kernel ~addr:buf ~size:8)

let test_narrow_memory () =
  let kernel, _ = fresh () in
  let m =
    simple_fn "narrow" (fun b ->
        ignore
          (Kir.Builder.start_func b "wr8"
             ~params:[ ("%p", I64); ("%v", I64) ]
             ~ret:None);
        Kir.Builder.store b I8 (Reg "%v") (Reg "%p");
        Kir.Builder.ret b None)
  in
  ignore (load_module kernel m);
  let buf = Kernel.kmalloc kernel ~size:8 in
  Kernel.write kernel ~addr:buf ~size:8 0;
  ignore (Kernel.call_symbol kernel "wr8" [| buf; 0x1FF |]);
  checki "truncated to byte" 0xFF (Kernel.read kernel ~addr:buf ~size:8)

let test_globals_resolution () =
  let kernel, _ = fresh () in
  let b = Kir.Builder.create "glob" in
  ignore (Kir.Builder.declare_global b "x" ~size:8 ~init:"\042");
  ignore (Kir.Builder.start_func b "get_x" ~params:[] ~ret:(Some I64));
  let v = Kir.Builder.load b I8 (Sym "x") in
  Kir.Builder.ret b (Some v);
  ignore (load_module kernel (Kir.Builder.modul b));
  checki "initialized global" 42 (Kernel.call_symbol kernel "get_x" [||])

let test_select_switch () =
  let kernel, _ = fresh () in
  let b = Kir.Builder.create "ctrl" in
  ignore (Kir.Builder.start_func b "pick" ~params:[ ("%c", I64) ] ~ret:(Some I64));
  let cnd = Kir.Builder.icmp b Ne I64 (Reg "%c") (Imm 0) in
  let s = Kir.Builder.select b cnd (Imm 111) (Imm 222) in
  Kir.Builder.ret b (Some s);
  ignore (Kir.Builder.start_func b "route" ~params:[ ("%k", I64) ] ~ret:(Some I64));
  let b1 = Kir.Builder.new_block b () in
  let b2 = Kir.Builder.new_block b () in
  let bd = Kir.Builder.new_block b () in
  Kir.Builder.switch b (Reg "%k") [ (1, b1); (2, b2) ] ~default:bd;
  Kir.Builder.position_at b b1;
  Kir.Builder.ret b (Some (Imm 10));
  Kir.Builder.position_at b b2;
  Kir.Builder.ret b (Some (Imm 20));
  Kir.Builder.position_at b bd;
  Kir.Builder.ret b (Some (Imm 99));
  ignore (load_module kernel (Kir.Builder.modul b));
  checki "select true" 111 (Kernel.call_symbol kernel "pick" [| 5 |]);
  checki "select false" 222 (Kernel.call_symbol kernel "pick" [| 0 |]);
  checki "switch 1" 10 (Kernel.call_symbol kernel "route" [| 1 |]);
  checki "switch 2" 20 (Kernel.call_symbol kernel "route" [| 2 |]);
  checki "switch default" 99 (Kernel.call_symbol kernel "route" [| 7 |])

let test_alloca_frames () =
  let kernel, _ = fresh () in
  let b = Kir.Builder.create "frames" in
  ignore (Kir.Builder.start_func b "inner" ~params:[] ~ret:(Some I64));
  let p = Kir.Builder.alloca b 16 in
  Kir.Builder.store b I64 (Imm 7) p;
  let v = Kir.Builder.load b I64 p in
  Kir.Builder.ret b (Some v);
  ignore (Kir.Builder.start_func b "outer" ~params:[] ~ret:(Some I64));
  let q = Kir.Builder.alloca b 16 in
  Kir.Builder.store b I64 (Imm 3) q;
  let r = Option.get (Kir.Builder.call b "inner" []) in
  let w = Kir.Builder.load b I64 q in
  let s = Kir.Builder.add b I64 r w in
  Kir.Builder.ret b (Some s);
  ignore (load_module kernel (Kir.Builder.modul b));
  (* inner's frame must not clobber outer's *)
  checki "frames isolated" 10 (Kernel.call_symbol kernel "outer" [||])

let test_indirect_call () =
  let kernel, _ = fresh () in
  let b = Kir.Builder.create "indirect" in
  ignore (Kir.Builder.start_func b "target" ~params:[ ("%x", I64) ] ~ret:(Some I64));
  let d = Kir.Builder.mul b I64 (Reg "%x") (Imm 2) in
  Kir.Builder.ret b (Some d);
  ignore (Kir.Builder.start_func b "trampoline" ~params:[ ("%x", I64) ] ~ret:(Some I64));
  Kir.Builder.emit b
    (Callind { dst = Some "%r"; fn = Sym "target"; args = [ Reg "%x" ] });
  Kir.Builder.ret b (Some (Reg "%r"));
  ignore (load_module kernel (Kir.Builder.modul b));
  checki "indirect doubles" 14 (Kernel.call_symbol kernel "trampoline" [| 7 |])

let test_divide_error_panics () =
  let kernel, _ = fresh () in
  let m =
    simple_fn "div" (fun b ->
        ignore
          (Kir.Builder.start_func b "div"
             ~params:[ ("%a", I64); ("%b", I64) ]
             ~ret:(Some I64));
        let q = Kir.Builder.binop b Sdiv I64 (Reg "%a") (Reg "%b") in
        Kir.Builder.ret b (Some q))
  in
  ignore (load_module kernel m);
  checki "normal division" 4 (Kernel.call_symbol kernel "div" [| 8; 2 |]);
  match Kernel.call_symbol kernel "div" [| 8; 0 |] with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "no panic on divide error"

let test_stack_overflow_panics () =
  let kernel, _ = fresh () in
  let m =
    simple_fn "deep" (fun b ->
        ignore (Kir.Builder.start_func b "deep" ~params:[] ~ret:(Some I64));
        ignore (Kir.Builder.alloca b 8192);
        let r = Option.get (Kir.Builder.call b "deep" []) in
        Kir.Builder.ret b (Some r))
  in
  ignore (load_module kernel m);
  match Kernel.call_symbol kernel "deep" [||] with
  | exception Kernel.Panic info ->
    checkb "mentions stack" true
      (String.length info.Kernel.reason > 0)
  | _ -> Alcotest.fail "no stack overflow"

let test_step_budget () =
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
  ignore (Vm.Interp.install ~max_steps:1000 kernel);
  let m =
    simple_fn "spin" (fun b ->
        ignore (Kir.Builder.start_func b "spin" ~params:[] ~ret:(Some I64));
        let head = Kir.Builder.new_block b () in
        Kir.Builder.br b head;
        Kir.Builder.position_at b head;
        Kir.Builder.br b head)
  in
  ignore (load_module kernel m);
  match Kernel.call_symbol kernel "spin" [||] with
  | exception Vm.Interp.Vm_error _ -> ()
  | _ -> Alcotest.fail "infinite loop not stopped"

let test_unreachable_panics () =
  let kernel, _ = fresh () in
  let m =
    simple_fn "unr" (fun b ->
        ignore (Kir.Builder.start_func b "unr" ~params:[] ~ret:None);
        Kir.Builder.set_term b Unreachable)
  in
  ignore (load_module kernel m);
  match Kernel.call_symbol kernel "unr" [||] with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "unreachable executed silently"

let test_inline_asm_panics_at_runtime () =
  (* unsigned kernel accepts the module; executing the asm still traps *)
  let kernel, _ = fresh () in
  let m =
    simple_fn "asm" (fun b ->
        ignore (Kir.Builder.start_func b "poke" ~params:[] ~ret:None);
        Kir.Builder.inline_asm b "wrmsr";
        Kir.Builder.ret b None)
  in
  ignore (load_module kernel m);
  match Kernel.call_symbol kernel "poke" [||] with
  | exception Kernel.Panic _ -> ()
  | _ -> Alcotest.fail "inline asm executed"

let test_bad_arity_call () =
  let kernel, _ = fresh () in
  let m =
    simple_fn "id" (fun b ->
        ignore (Kir.Builder.start_func b "id" ~params:[ ("%x", I64) ] ~ret:(Some I64));
        Kir.Builder.ret b (Some (Reg "%x")))
  in
  ignore (load_module kernel m);
  match Kernel.call_symbol kernel "id" [| 1; 2 |] with
  | exception Vm.Interp.Vm_error _ -> ()
  | _ -> Alcotest.fail "bad arity accepted"

let test_cycles_accumulate () =
  let kernel, _ = fresh () in
  let m =
    simple_fn "busy" (fun b ->
        ignore (Kir.Builder.start_func b "busy" ~params:[ ("%n", I64) ] ~ret:(Some I64));
        Kir.Builder.mov_to b "%acc" I64 (Imm 0);
        Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Reg "%n") ~step:(Imm 1)
          (fun i ->
            let s = Kir.Builder.add b I64 (Reg "%acc") i in
            Kir.Builder.mov_to b "%acc" I64 s);
        Kir.Builder.ret b (Some (Reg "%acc")))
  in
  ignore (load_module kernel m);
  (* warm caches and predictor once, then compare warm runs *)
  ignore (Kernel.call_symbol kernel "busy" [| 100 |]);
  let c0 = Machine.Model.cycles (Kernel.machine kernel) in
  checki "sum" 4950 (Kernel.call_symbol kernel "busy" [| 100 |]);
  let c1 = Machine.Model.cycles (Kernel.machine kernel) in
  checkb "cycles charged" true (c1 - c0 > 100);
  (* longer run costs proportionally more *)
  let c2 = Machine.Model.cycles (Kernel.machine kernel) in
  ignore (Kernel.call_symbol kernel "busy" [| 1000 |]);
  let c3 = Machine.Model.cycles (Kernel.machine kernel) in
  checkb "scales with iterations" true (c3 - c2 > 3 * (c1 - c0))

(* ---------- tracer ---------- *)

let test_tracer_captures () =
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
  let vm = Vm.Interp.install kernel in
  let m =
    simple_fn "traced" (fun b ->
        ignore (Kir.Builder.start_func b "twice" ~params:[ ("%x", I64) ] ~ret:(Some I64));
        let d = Kir.Builder.mul b I64 (Reg "%x") (Imm 2) in
        Kir.Builder.ret b (Some d))
  in
  ignore (load_module kernel m);
  let get = Vm.Interp.trace_to_buffer vm in
  checki "result unaffected" 10 (Kernel.call_symbol kernel "twice" [| 5 |]);
  let events = get () in
  checki "two events (mul + ret)" 2 (List.length events);
  (match events with
  | [ e1; e2 ] ->
    Alcotest.(check string) "func" "twice" e1.Vm.Interp.ev_func;
    checkb "mul printed" true
      (String.length e1.Vm.Interp.ev_instr > 3);
    checkb "ret printed" true
      (String.sub e2.Vm.Interp.ev_instr 0 3 = "ret")
  | _ -> Alcotest.fail "wrong shape");
  (* tracing must not change cost accounting *)
  Vm.Interp.set_tracer vm None;
  let m0 = Kernel.machine kernel in
  let c0 = Machine.Model.cycles m0 in
  ignore (Kernel.call_symbol kernel "twice" [| 5 |]);
  let untraced = Machine.Model.cycles m0 - c0 in
  let (_ : unit -> Vm.Interp.trace_event list) = Vm.Interp.trace_to_buffer vm in
  let c1 = Machine.Model.cycles m0 in
  ignore (Kernel.call_symbol kernel "twice" [| 5 |]);
  let traced = Machine.Model.cycles m0 - c1 in
  checki "same cycles with tracing" untraced traced

let test_tracer_capacity () =
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
  let vm = Vm.Interp.install kernel in
  let m =
    simple_fn "spin" (fun b ->
        ignore (Kir.Builder.start_func b "work" ~params:[] ~ret:(Some I64));
        Kir.Builder.mov_to b "%acc" I64 (Imm 0);
        Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Imm 1000) ~step:(Imm 1)
          (fun i ->
            let s = Kir.Builder.add b I64 (Reg "%acc") i in
            Kir.Builder.mov_to b "%acc" I64 s);
        Kir.Builder.ret b (Some (Reg "%acc")))
  in
  ignore (load_module kernel m);
  let get = Vm.Interp.trace_to_buffer ~capacity:50 vm in
  ignore (Kernel.call_symbol kernel "work" [||]);
  checki "bounded" 50 (List.length (get ()))

(* ---------- differential testing ---------- *)

(* random arithmetic expression trees, evaluated both by a reference
   OCaml evaluator (via Vm.Arith, unit-tested above) and by compiling to
   KIR and running the interpreter; results must agree bit-for-bit *)
type expr =
  | Const of int
  | Arg of int (* 0 or 1 *)
  | Bin of binop * expr * expr
  | Cmp of cond * expr * expr
  | Sel of expr * expr * expr

let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map (fun c -> Const (c - 500)) (int_bound 1000);
              map (fun i -> Arg i) (int_bound 1) ]
        else
          frequency
            [
              (1, map (fun c -> Const (c - 500)) (int_bound 1000));
              (1, map (fun i -> Arg i) (int_bound 1));
              ( 4,
                map3
                  (fun op a b -> Bin (op, a, b))
                  (oneofl [ Add; Sub; Mul; And; Or; Xor; Shl; Lshr ])
                  (self (n / 2)) (self (n / 2)) );
              ( 2,
                map3
                  (fun c a b -> Cmp (c, a, b))
                  (oneofl [ Eq; Ne; Slt; Ult; Sge; Ule ])
                  (self (n / 2)) (self (n / 2)) );
              ( 1,
                map3
                  (fun c (a, b) () -> Sel (c, a, b))
                  (self (n / 3))
                  (pair (self (n / 3)) (self (n / 3)))
                  unit );
            ]))

(* reference semantics: all operations at I64 via Vm.Arith *)
let rec eval_ref args = function
  | Const c -> c
  | Arg i -> args.(i)
  | Bin (op, a, b) ->
    let bv = eval_ref args b in
    let bv = match op with Shl | Lshr -> bv land 63 | _ -> bv in
    Vm.Arith.binop I64 op (eval_ref args a) bv
  | Cmp (c, a, b) ->
    if Vm.Arith.compare_values I64 c (eval_ref args a) (eval_ref args b)
    then 1
    else 0
  | Sel (c, a, b) ->
    if eval_ref args c <> 0 then eval_ref args a else eval_ref args b

(* compile to KIR *)
let rec emit_expr b = function
  | Const c -> Imm c
  | Arg 0 -> Reg "%a0"
  | Arg _ -> Reg "%a1"
  | Bin (op, x, y) ->
    let vx = emit_expr b x in
    let vy = emit_expr b y in
    let vy =
      match op with
      | Shl | Lshr -> Kir.Builder.and_ b I64 vy (Imm 63)
      | _ -> vy
    in
    Kir.Builder.binop b op I64 vx vy
  | Cmp (c, x, y) ->
    let vx = emit_expr b x in
    let vy = emit_expr b y in
    Kir.Builder.icmp b c I64 vx vy
  | Sel (c, x, y) ->
    let vc = emit_expr b c in
    let vx = emit_expr b x in
    let vy = emit_expr b y in
    Kir.Builder.select b vc vx vy

let prop_differential =
  QCheck.Test.make ~name:"interpreter agrees with reference semantics"
    ~count:150
    QCheck.(
      make
        Gen.(tup3 gen_expr (int_bound 10000) (int_bound 10000)))
    (fun (e, x, y) ->
      let b = Kir.Builder.create "diff" in
      ignore
        (Kir.Builder.start_func b "f"
           ~params:[ ("%a0", I64); ("%a1", I64) ]
           ~ret:(Some I64));
      let v = emit_expr b e in
      Kir.Builder.ret b (Some v);
      let m = Kir.Builder.modul b in
      Kir.Verify.check_exn m;
      let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
      ignore (Vm.Interp.install kernel);
      (match Kernel.insmod kernel m with Ok _ -> () | Error _ -> assert false);
      let got = Kernel.call_symbol kernel "f" [| x; y |] in
      got = eval_ref [| x; y |] e)

(* the same program transformed with guards computes the same result *)
let prop_guards_preserve_semantics =
  QCheck.Test.make ~name:"guard injection preserves program results"
    ~count:60
    QCheck.(make Gen.(tup2 gen_expr (int_bound 1000)))
    (fun (e, x) ->
      let build () =
        let b = Kir.Builder.create "sem" in
        ignore (Kir.Builder.declare_global b "g" ~size:64);
        ignore
          (Kir.Builder.start_func b "f"
             ~params:[ ("%a0", I64); ("%a1", I64) ]
             ~ret:(Some I64));
        let v = emit_expr b e in
        (* run the value through memory so guards actually fire *)
        Kir.Builder.store b I64 v (Sym "g");
        let back = Kir.Builder.load b I64 (Sym "g") in
        Kir.Builder.ret b (Some back);
        Kir.Builder.modul b
      in
      let run m =
        let kernel =
          Kernel.create ~require_signature:false Machine.Presets.r350
        in
        ignore (Vm.Interp.install kernel);
        Kernel.register_native kernel "carat_guard" (fun _ _ -> 0);
        (match Kernel.insmod kernel m with Ok _ -> () | Error _ -> assert false);
        Kernel.call_symbol kernel "f" [| x; 7 |]
      in
      let plain = build () in
      let guarded = build () in
      ignore
        (Passes.Guard_injection.run Passes.Guard_injection.default_config
           guarded);
      run plain = run guarded)

let () =
  Alcotest.run "vm"
    [
      ( "arith",
        [
          Alcotest.test_case "truncate" `Quick test_truncate;
          Alcotest.test_case "signed views" `Quick test_signed_views;
          Alcotest.test_case "binops" `Quick test_binops;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "compare" `Quick test_compare;
          QCheck_alcotest.to_alcotest prop_arith_add_commutes;
          QCheck_alcotest.to_alcotest prop_arith_sub_inverse;
        ] );
      ( "interp",
        [
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
          Alcotest.test_case "narrow store" `Quick test_narrow_memory;
          Alcotest.test_case "globals" `Quick test_globals_resolution;
          Alcotest.test_case "select/switch" `Quick test_select_switch;
          Alcotest.test_case "alloca frames" `Quick test_alloca_frames;
          Alcotest.test_case "indirect call" `Quick test_indirect_call;
          Alcotest.test_case "cycles accumulate" `Quick test_cycles_accumulate;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "captures events" `Quick test_tracer_captures;
          Alcotest.test_case "capacity bound" `Quick test_tracer_capacity;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_differential;
          QCheck_alcotest.to_alcotest prop_guards_preserve_semantics;
        ] );
      ( "faults",
        [
          Alcotest.test_case "divide error" `Quick test_divide_error_panics;
          Alcotest.test_case "stack overflow" `Quick test_stack_overflow_panics;
          Alcotest.test_case "step budget" `Quick test_step_budget;
          Alcotest.test_case "unreachable" `Quick test_unreachable_panics;
          Alcotest.test_case "inline asm at runtime" `Quick test_inline_asm_panics_at_runtime;
          Alcotest.test_case "bad arity" `Quick test_bad_arity_call;
        ] );
    ]
