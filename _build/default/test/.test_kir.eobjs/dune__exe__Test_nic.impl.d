test/test_nic.ml: Alcotest Carat_kop Kernel Kir List Machine Net Nic Option Passes Vm
