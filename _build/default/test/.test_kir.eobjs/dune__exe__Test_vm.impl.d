test/test_vm.ml: Alcotest Array Carat_kop Gen Kernel Kir List Machine Option Passes QCheck QCheck_alcotest String Vm
