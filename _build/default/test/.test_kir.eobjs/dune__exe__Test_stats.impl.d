test/test_stats.ml: Alcotest Array Carat_kop Float Gen List QCheck QCheck_alcotest Stats String
