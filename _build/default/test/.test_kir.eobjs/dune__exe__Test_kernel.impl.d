test/test_kernel.ml: Alcotest Array Carat_kop Char Kernel Kir List Machine Option Passes Result Vm
