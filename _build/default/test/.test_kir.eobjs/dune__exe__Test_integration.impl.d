test/test_integration.ml: Alcotest Carat_kop Kernel Kir List Machine Net Nic Passes Policy Testbed Vm
