test/test_kir.mli:
