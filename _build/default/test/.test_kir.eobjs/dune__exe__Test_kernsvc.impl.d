test/test_kernsvc.ml: Alcotest Carat_kop Char Kernel Kernsvc Kir List Machine Option Passes Policy Printf String Vm
