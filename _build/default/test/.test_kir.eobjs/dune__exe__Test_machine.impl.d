test/test_machine.ml: Alcotest Carat_kop List Machine
