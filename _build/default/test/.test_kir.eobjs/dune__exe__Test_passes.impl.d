test/test_passes.ml: Alcotest Array Carat_kop Gen Kir List Option Passes QCheck QCheck_alcotest String
