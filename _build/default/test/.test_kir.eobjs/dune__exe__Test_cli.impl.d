test/test_cli.ml: Alcotest Buffer Carat_kop Filename List Printf String Sys Unix
