test/test_policy.ml: Alcotest Carat_kop Kernel List Machine Policy Printf QCheck QCheck_alcotest Result String
