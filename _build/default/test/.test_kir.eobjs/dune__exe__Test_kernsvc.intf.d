test/test_kernsvc.mli:
