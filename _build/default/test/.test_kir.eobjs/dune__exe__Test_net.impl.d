test/test_net.ml: Alcotest Array Carat_kop Char Kernel Machine Net Nic QCheck QCheck_alcotest Stats String Vm
