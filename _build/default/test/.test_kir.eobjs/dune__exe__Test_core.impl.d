test/test_core.ml: Alcotest Array Carat_kop Experiments Kir List Machine Net Nic Passes Policy Testbed
