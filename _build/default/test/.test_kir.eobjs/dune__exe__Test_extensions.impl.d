test/test_extensions.ml: Alcotest Carat_kop Kernel Kir List Machine Nic Option Passes Policy String Vm
