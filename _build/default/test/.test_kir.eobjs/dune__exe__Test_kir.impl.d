test/test_kir.ml: Alcotest Array Bytes Carat_kop Char Kir List Option Printf QCheck QCheck_alcotest String
