bin/kop_run.mli:
