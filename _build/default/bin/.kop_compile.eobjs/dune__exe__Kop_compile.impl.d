bin/kop_compile.ml: Arg Carat_kop Cmd Cmdliner Kir List Nic Passes Printf Term
