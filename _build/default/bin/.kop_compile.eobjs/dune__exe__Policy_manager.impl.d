bin/policy_manager.ml: Arg Carat_kop Cmd Cmdliner Kernel List Machine Policy Printf Sys Term
