bin/kop_run.ml: Arg Array Carat_kop Cmd Cmdliner Kernel Kir List Machine Policy Printf String Term Vm
