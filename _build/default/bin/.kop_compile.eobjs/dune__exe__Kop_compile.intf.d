bin/kop_compile.mli:
