bin/policy_manager.mli:
