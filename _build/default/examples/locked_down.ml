(* Everything §5 of the paper sketches as future work, running together:
   a "monitoring" module locked down on four axes —

     1. memory regions   — may read the stats queue, not the secrets file
     2. file metadata    — the kernfs inode table is off-limits
     3. privileged ops   — may use rdtsc, may NOT use wrmsr/cli
     4. control flow     — indirect calls only to its own handler

   The module is transformed with the extended pipeline
   (guard_intrinsics + guard_cfi on top of the paper's memory guards).

   Run with: dune exec examples/locked_down.exe *)

open Carat_kop
open Kir.Types

(* The "monitoring" module: mostly legitimate, with several sharp edges
   an operator would want fenced. *)
let make_monitor () =
  let b = Kir.Builder.create "hpc_monitor" in
  List.iter
    (fun (name, arity) -> Kir.Builder.declare_extern b name ~arity)
    [ ("mq_recv", 3); ("kmalloc", 1) ];
  (* sample(): timestamp via rdtsc and drain one stats message *)
  ignore (Kir.Builder.start_func b "sample" ~params:[ ("%qid", I64) ] ~ret:(Some I64));
  let t0 =
    match Kir.Builder.intrinsic b ~want_result:true "rdtsc" [] with
    | Some v -> v
    | None -> assert false
  in
  let buf =
    match Kir.Builder.call b "kmalloc" [ Imm 64 ] with
    | Some v -> v
    | None -> assert false
  in
  ignore (Kir.Builder.call b "mq_recv" [ Reg "%qid"; buf; Imm 64 ]);
  let first = Kir.Builder.load b I8 buf in
  let sum = Kir.Builder.add b I64 t0 first in
  Kir.Builder.ret b (Some sum);
  (* handler(x): the only legitimate indirect-call target *)
  ignore (Kir.Builder.start_func b "handler" ~params:[ ("%x", I64) ] ~ret:(Some I64));
  let d = Kir.Builder.mul b I64 (Reg "%x") (Imm 3) in
  Kir.Builder.ret b (Some d);
  (* dispatch(fp, x): calls through a function pointer *)
  ignore
    (Kir.Builder.start_func b "dispatch"
       ~params:[ ("%fp", I64); ("%x", I64) ]
       ~ret:(Some I64));
  Kir.Builder.emit b
    (Callind { dst = Some "%r"; fn = Reg "%fp"; args = [ Reg "%x" ] });
  Kir.Builder.ret b (Some (Reg "%r"));
  (* overclock(): the "performance tweak" that writes an MSR *)
  ignore (Kir.Builder.start_func b "overclock" ~params:[] ~ret:(Some I64));
  ignore (Kir.Builder.intrinsic b "wrmsr" [ Imm 0x199; Imm 0xFFFF ]);
  Kir.Builder.ret b (Some (Imm 0));
  (* snoop(addr): reads arbitrary kernel memory *)
  ignore (Kir.Builder.start_func b "snoop" ~params:[ ("%a", I64) ] ~ret:(Some I64));
  let v = Kir.Builder.load b I64 (Reg "%a") in
  Kir.Builder.ret b (Some v);
  Kir.Builder.modul b

let expect label outcome f =
  let result = try ignore (f ()); `Ok with Kernel.Panic _ -> `Panic in
  let shown = match result with `Ok -> "ran" | `Panic -> "PANIC" in
  Printf.printf "  %-56s %s %s\n" label shown
    (if result = outcome then "[as expected]" else "[UNEXPECTED]");
  if result <> outcome then exit 1

(* one fresh locked-down kernel per probe (a panic kills the kernel) *)
let build () =
  let k = Kernel.create Machine.Presets.r350 in
  let vm = Vm.Interp.install k in
  let pm = Policy.Policy_module.install k in
  let fs = Kernsvc.Kernfs.create k in
  let mq = Kernsvc.Msgq.create k in
  (* kernel objects *)
  let secret =
    Kernsvc.Kernfs.create_file fs ~name:"/etc/shadow"
      ~mode:Kernsvc.Kernfs.mode_read ~capacity:64
  in
  Kernsvc.Kernfs.write_contents fs ~ino:secret "root:$6$salt$hash";
  let stats_q = Kernsvc.Msgq.create_queue mq ~capacity:8 ~slot_size:48 in
  ignore (Kernsvc.Msgq.send mq stats_q "load:0.42");
  (* the module, compiled with ALL the extensions *)
  let m = make_monitor () in
  ignore (Passes.Pipeline.compile ~guard_intrinsics:true ~guard_cfi:true m);
  (match Kernel.insmod k m with
  | Ok _ -> ()
  | Error e -> failwith (Kernel.load_error_to_string e));
  (* axis 1+2: memory policy (first match wins) *)
  Policy.Policy_module.set_policy pm
    [
      Kernsvc.Kernfs.metadata_region fs (* inodes: no access *);
      Kernsvc.Kernfs.data_region fs ~ino:secret ~prot:0 (* secrets: none *);
      Kernsvc.Msgq.queue_region stats_q ~prot:Policy.Region.prot_read;
      Policy.Region.v ~tag:"module-stack" ~base:vm.Vm.Interp.stack_base
        ~len:vm.Vm.Interp.stack_size ~prot:Policy.Region.prot_rw ();
      Policy.Region.v ~tag:"module-area" ~base:Kernel.Layout.module_base
        ~len:Kernel.Layout.module_area_size ~prot:Policy.Region.prot_rw ();
      Policy.Region.v ~tag:"kernel-rest" ~base:Kernel.Layout.kernel_base
        ~len:0x2FFF_FFFF_FFFF_FFFF ~prot:Policy.Region.prot_rw ();
    ];
  (* axis 3: intrinsic permissions *)
  Policy.Policy_module.allow_intrinsics pm [ "rdtsc" ];
  (* axis 4: CFI allow-list *)
  Policy.Policy_module.set_cfi_allowlist pm [ "handler" ];
  (k, pm, fs, stats_q, secret)

let () =
  print_endline "a monitoring module, locked down on four axes\n";

  let k, _, _, q, _ = build () in
  expect "sample(): rdtsc + drain stats queue" `Ok (fun () ->
      Kernel.call_symbol k "sample" [| q.Kernsvc.Msgq.qid |]);

  let k, _, _, _, _ = build () in
  let handler = Option.get (Kernel.symbol_address k "handler") in
  expect "dispatch through the declared handler" `Ok (fun () ->
      Kernel.call_symbol k "dispatch" [| handler; 7 |]);

  print_endline "";
  let k, _, fs, _, secret = build () in
  expect "snoop() on the secrets file data" `Panic (fun () ->
      let inode = Kernsvc.Kernfs.inode_vaddr fs secret in
      let data = Kernel.read k ~addr:(inode + 32) ~size:8 in
      Kernel.call_symbol k "snoop" [| data |]);

  let k, _, fs, _, secret = build () in
  expect "snoop() on the inode table (file metadata)" `Panic (fun () ->
      Kernel.call_symbol k "snoop"
        [| Kernsvc.Kernfs.inode_vaddr fs secret |]);

  let k, _, _, _, _ = build () in
  expect "overclock(): wrmsr without a grant" `Panic (fun () ->
      Kernel.call_symbol k "overclock" [||]);

  let k, _, _, _, _ = build () in
  let printk = Option.get (Kernel.symbol_address k "printk") in
  expect "dispatch to a kernel function off the allow-list" `Panic
    (fun () -> Kernel.call_symbol k "dispatch" [| printk; 7 |]);

  print_endline "\nthe same module, policy-fenced: useful work runs, every";
  print_endline "escape hatch the paper lists in §5 is closed."
