(* The threat model (§1): "the consequences of installing buggy or
   malicious modules into the kernel can range from corruption of data to
   full-fledged rootkit-style attacks". Three attacks, and what CARAT KOP
   does to each:

   1. a rootkit that scribbles over core-kernel data        -> guard panic
   2. a module carrying inline assembly                     -> refused at compile
   3. a module whose signature was tampered with after sign -> refused at insmod
   4. the same rootkit loaded WITHOUT CARAT KOP             -> corruption succeeds

   Run with: dune exec examples/malicious_module.exe *)

open Carat_kop
open Kir.Types

(* A "helpful performance module" that, once poked, overwrites the kernel
   cred table (here: a word in core-kernel data) — the classic privilege
   escalation. *)
let make_rootkit () =
  let b = Kir.Builder.create "perf_booster" in
  ignore
    (Kir.Builder.start_func b "boost"
       ~params:[ ("%target", I64) ]
       ~ret:(Some I64));
  (* pretend to do useful work first *)
  let scratch = Kir.Builder.alloca b 32 in
  Kir.Builder.store b I64 (Imm 1) scratch;
  let v = Kir.Builder.load b I64 scratch in
  (* ... then the payload: write 0 (root uid) into the target *)
  Kir.Builder.store b I64 (Imm 0) (Reg "%target");
  Kir.Builder.ret b (Some v);
  Kir.Builder.modul b

let make_asm_module () =
  let b = Kir.Builder.create "msr_poker" in
  ignore (Kir.Builder.start_func b "poke_msr" ~params:[] ~ret:(Some I64));
  Kir.Builder.inline_asm b "wrmsr";
  Kir.Builder.ret b (Some (Imm 0));
  Kir.Builder.modul b

let fresh_kernel () =
  let kernel = Kernel.create Machine.Presets.r350 in
  let vm = Vm.Interp.install kernel in
  let pm = Policy.Policy_module.install kernel in
  (* module may use its own area and its own (kernel) stack — not the
     core kernel's data and not the direct map at large *)
  Policy.Policy_module.set_policy pm
    [
      Policy.Region.v ~tag:"module-area" ~base:Kernel.Layout.module_base
        ~len:Kernel.Layout.module_area_size ~prot:Policy.Region.prot_rw ();
      Policy.Region.v ~tag:"module-stack" ~base:vm.Vm.Interp.stack_base
        ~len:vm.Vm.Interp.stack_size ~prot:Policy.Region.prot_rw ();
    ];
  kernel

(* the simulated struct cred: a word of core-kernel static data *)
let cred_addr = Kernel.Layout.kernel_data_base + 0x400

let () =
  print_endline "three attacks against the core kernel";

  (* -------- attack 1: guarded rootkit -------- *)
  print_endline "\n[1] rootkit write to kernel cred table, CARAT KOP build";
  let kernel = fresh_kernel () in
  Kernel.write kernel ~addr:cred_addr ~size:8 1000 (* uid 1000 *);
  let rootkit = make_rootkit () in
  ignore (Passes.Pipeline.compile rootkit);
  (match Kernel.insmod kernel rootkit with
  | Ok _ -> print_endline "  module inserted (it looks legitimate)"
  | Error e -> failwith (Kernel.load_error_to_string e));
  (try ignore (Kernel.call_symbol kernel "boost" [| cred_addr |])
   with Kernel.Panic info ->
     Printf.printf "  guard fired -> %s\n" info.Kernel.reason);
  Printf.printf "  cred after attack: uid=%d (intact: %b)\n"
    (Kernel.dma_read kernel ~addr:cred_addr ~size:8)
    (Kernel.dma_read kernel ~addr:cred_addr ~size:8 = 1000);

  (* -------- attack 2: inline assembly -------- *)
  print_endline "\n[2] module carrying inline assembly (wrmsr)";
  let asm_mod = make_asm_module () in
  (try
     ignore (Passes.Pipeline.compile asm_mod);
     print_endline "  COMPILED (unexpected!)"
   with Passes.Pass.Pass_failed (pass, reason) ->
     Printf.printf "  compiler refused in pass '%s': %s\n" pass reason);

  (* -------- attack 3: post-signing tamper -------- *)
  print_endline "\n[3] binary patched after signing";
  let kernel = fresh_kernel () in
  let patched = make_rootkit () in
  ignore (Passes.Pipeline.compile patched);
  (* strip the guards out after signing, keeping the metadata *)
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          blk.body <-
            List.filter
              (function
                | Call { callee = "carat_guard"; _ } -> false
                | _ -> true)
              blk.body)
        f.blocks)
    patched.funcs;
  (match Kernel.insmod kernel patched with
  | Ok _ -> print_endline "  inserted (unexpected!)"
  | Error e -> Printf.printf "  insmod rejected: %s\n" (Kernel.load_error_to_string e));

  (* -------- control: no CARAT KOP -------- *)
  print_endline "\n[4] control: the same rootkit on a kernel without CARAT KOP";
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
  ignore (Vm.Interp.install kernel);
  Kernel.write kernel ~addr:cred_addr ~size:8 1000;
  let rootkit = make_rootkit () in
  (match Kernel.insmod kernel rootkit with
  | Ok _ -> print_endline "  module inserted, no questions asked"
  | Error e -> failwith (Kernel.load_error_to_string e));
  ignore (Kernel.call_symbol kernel "boost" [| cred_addr |]);
  Printf.printf "  cred after attack: uid=%d (CORRUPTED: %b)\n"
    (Kernel.dma_read kernel ~addr:cred_addr ~size:8)
    (Kernel.dma_read kernel ~addr:cred_addr ~size:8 = 0);
  print_endline "\nmalicious_module done."
