(* The module the paper's introduction actually motivates: "fast timer
   delivery for heartbeat scheduling" — the kind of specialized HPC
   module an operator would want to deploy but hesitates to trust.

   A heartbeat module arms a periodic kernel timer; every beat, its
   callback (module code, hence guarded) walks a small task table and
   promotes work. We run it protected by CARAT KOP, count beats and
   guard checks, then show the flip side: a policy that doesn't cover
   the task table panics straight out of the timer interrupt.

   Run with: dune exec examples/heartbeat.exe *)

open Carat_kop
open Kir.Types

let task_count = 8

(* heartbeat module: a periodic callback over a task table global *)
let make_heartbeat () =
  let b = Kir.Builder.create "hpc_heartbeat" in
  Kir.Builder.declare_extern b "timer_arm" ~arity:3;
  (* task table: per-task {deadline-ish counter, promotions} pairs *)
  ignore (Kir.Builder.declare_global b "tasks" ~size:(task_count * 16));
  ignore (Kir.Builder.declare_global b "beats" ~size:8);
  (* beat(id): the timer callback *)
  ignore (Kir.Builder.start_func b "beat" ~params:[ ("%id", I64) ] ~ret:(Some I64));
  let n = Kir.Builder.load b I64 (Sym "beats") in
  let n1 = Kir.Builder.add b I64 n (Imm 1) in
  Kir.Builder.store b I64 n1 (Sym "beats");
  Kir.Builder.for_loop b ~init:(Imm 0) ~limit:(Imm task_count) ~step:(Imm 1)
    (fun i ->
      let slot = Kir.Builder.gep b (Sym "tasks") i ~scale:16 in
      let credit = Kir.Builder.load b I64 slot in
      let credit1 = Kir.Builder.add b I64 credit (Imm 1) in
      Kir.Builder.store b I64 credit1 slot;
      (* promote every 4th beat's worth of credit *)
      let due = Kir.Builder.icmp b Sge I64 credit1 (Imm 4) in
      Kir.Builder.if_then b due ~then_:(fun () ->
          Kir.Builder.store b I64 (Imm 0) slot;
          let promo = Kir.Builder.gep b slot (Imm 8) ~scale:1 in
          let p = Kir.Builder.load b I64 promo in
          let p1 = Kir.Builder.add b I64 p (Imm 1) in
          Kir.Builder.store b I64 p1 promo));
  Kir.Builder.ret b (Some (Imm 0));
  (* start(period): arm the periodic heartbeat *)
  ignore (Kir.Builder.start_func b "start" ~params:[ ("%period", I64) ] ~ret:(Some I64));
  let id =
    Option.get
      (Kir.Builder.call b "timer_arm"
         [ Sym "beat"; Reg "%period"; Reg "%period" ])
  in
  Kir.Builder.ret b (Some id);
  Kir.Builder.modul b

let build ~cover_module_area =
  let k = Kernel.create Machine.Presets.r350 in
  let vm = Vm.Interp.install k in
  let pm = Policy.Policy_module.install k in
  let timers = Kernsvc.Ktimer.create k in
  let m = make_heartbeat () in
  ignore (Passes.Pipeline.compile m);
  (match Kernel.insmod k m with
  | Ok _ -> ()
  | Error e -> failwith (Kernel.load_error_to_string e));
  let base_rules =
    [
      Policy.Region.v ~tag:"module-stack" ~base:vm.Vm.Interp.stack_base
        ~len:vm.Vm.Interp.stack_size ~prot:Policy.Region.prot_rw ();
    ]
  in
  let rules =
    if cover_module_area then
      Policy.Region.v ~tag:"module-area" ~base:Kernel.Layout.module_base
        ~len:Kernel.Layout.module_area_size ~prot:Policy.Region.prot_rw ()
      :: base_rules
    else base_rules
  in
  Policy.Policy_module.set_policy pm rules;
  (k, pm, timers)

let () =
  print_endline "heartbeat scheduling module under CARAT KOP\n";
  let k, pm, timers = build ~cover_module_area:true in
  let period = 100_000 (* cycles *) in
  let tid = Kernel.call_symbol k "start" [| period |] in
  Printf.printf "armed periodic timer %d (period %d cycles)\n" tid period;
  (* run ~25 beats of simulated time *)
  let fired = ref 0 in
  for _ = 1 to 25 do
    fired := !fired + Kernsvc.Ktimer.advance timers ~cycles:period
  done;
  let beats = Option.get (Kernel.symbol_address k "beats") in
  Printf.printf "beats delivered: %d (module counted %d)\n" !fired
    (Kernel.read k ~addr:beats ~size:8);
  let tasks = Option.get (Kernel.symbol_address k "tasks") in
  Printf.printf "task 0: %d promotions (every 4th beat)\n"
    (Kernel.read k ~addr:(tasks + 8) ~size:8);
  let st = Policy.Engine.stats (Policy.Policy_module.engine pm) in
  Printf.printf "guard checks across all callbacks: %d (denied %d)\n"
    st.Policy.Engine.checks st.Policy.Engine.denied;
  Printf.printf "guard checks per beat: %.1f\n"
    (float_of_int st.Policy.Engine.checks /. float_of_int (max 1 !fired));

  print_endline "\nnow the misconfigured node: policy forgets the module's own data";
  let k2, _, timers2 = build ~cover_module_area:false in
  ignore (Kernel.call_symbol k2 "start" [| period |]);
  (try ignore (Kernsvc.Ktimer.advance timers2 ~cycles:period) with
  | Kernel.Panic info ->
    Printf.printf "PANIC from timer-interrupt context: %s\n" info.Kernel.reason);
  print_endline "\nthe hard stop fires even when the module is entered by the";
  print_endline "kernel itself (timer callback), not just by syscalls."
