examples/heartbeat.ml: Carat_kop Kernel Kernsvc Kir Machine Option Passes Policy Printf Vm
