examples/nic_protection.mli:
