examples/firewall_policy.ml: Carat_kop Kernel Kir Machine Passes Policy Printf Vm
