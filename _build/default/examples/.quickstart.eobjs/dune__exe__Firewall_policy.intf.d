examples/firewall_policy.mli:
