examples/nic_protection.ml: Carat_kop Kir List Machine Net Nic Passes Policy Printf Stats Testbed
