examples/quickstart.ml: Carat_kop Kernel Kir List Machine Passes Policy Printf Vm
