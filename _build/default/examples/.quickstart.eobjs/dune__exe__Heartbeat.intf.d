examples/heartbeat.mli:
