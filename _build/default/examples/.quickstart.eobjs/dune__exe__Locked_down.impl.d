examples/locked_down.ml: Carat_kop Kernel Kernsvc Kir List Machine Option Passes Policy Printf Vm
