examples/quickstart.mli:
