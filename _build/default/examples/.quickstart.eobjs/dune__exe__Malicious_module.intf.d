examples/malicious_module.mli:
