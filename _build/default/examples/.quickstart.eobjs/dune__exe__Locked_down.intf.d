examples/locked_down.mli:
