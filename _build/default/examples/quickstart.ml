(* Quickstart: compile a tiny kernel module with the CARAT KOP compiler,
   insert it into a simulated kernel under a two-region policy, watch a
   conforming call succeed and a violating access bring the kernel down.

   Run with: dune exec examples/quickstart.exe *)

open Carat_kop

let () =
  print_endline banner;
  print_endline "";

  (* 1. Write a little kernel module in KIR: it exposes [sum_region],
     which adds up [n] bytes starting at [addr] — a perfectly ordinary
     thing for a module to do, and exactly the kind of code that can read
     memory it should not. *)
  let b = Kir.Builder.create "demo_mod" in
  ignore
    (Kir.Builder.start_func b "sum_region"
       ~params:[ ("%addr", Kir.Types.I64); ("%n", Kir.Types.I64) ]
       ~ret:(Some Kir.Types.I64));
  Kir.Builder.mov_to b "%sum" Kir.Types.I64 (Kir.Types.Imm 0);
  Kir.Builder.for_loop b ~init:(Kir.Types.Imm 0) ~limit:(Kir.Types.Reg "%n")
    ~step:(Kir.Types.Imm 1) (fun i ->
      let a = Kir.Builder.gep b (Kir.Types.Reg "%addr") i ~scale:1 in
      let byte = Kir.Builder.load b Kir.Types.I8 a in
      let s = Kir.Builder.add b Kir.Types.I64 (Kir.Types.Reg "%sum") byte in
      Kir.Builder.mov_to b "%sum" Kir.Types.I64 s);
  Kir.Builder.ret b (Some (Kir.Types.Reg "%sum"));
  let m = Kir.Builder.modul b in

  (* 2. Run the CARAT KOP compiler: attestation, guard injection (one
     guard in front of every load/store — no optimization, as in the
     paper), and signing. *)
  let remarks = Passes.Pipeline.compile m in
  List.iter
    (fun (pass, r) ->
      List.iter
        (fun (k, v) -> Printf.printf "  [%s] %s = %s\n" pass k v)
        r.Passes.Pass.remarks)
    remarks;

  (* 3. Boot a kernel (R350 model), install the policy module with the
     paper's two-region policy (kernel half allowed, user half denied),
     and insert the protected module. *)
  let kernel = Kernel.create Machine.Presets.r350 in
  ignore (Vm.Interp.install kernel);
  let pm = Policy.Policy_module.install kernel in
  Policy.Policy_module.set_policy pm Policy.Region.kernel_only;
  (match Kernel.insmod kernel m with
  | Ok _ -> print_endline "\nmodule inserted (signature validated)"
  | Error e -> failwith (Kernel.load_error_to_string e));

  (* 4. A conforming call: sum 64 bytes of kernel heap. Every byte load
     runs through carat_guard; the policy allows it. *)
  let buf = Kernel.kmalloc kernel ~size:64 in
  for i = 0 to 63 do
    Kernel.write kernel ~addr:(buf + i) ~size:1 (i land 0xff)
  done;
  let sum = Kernel.call_symbol kernel "sum_region" [| buf; 64 |] in
  Printf.printf "sum_region over kernel heap: %d (expected %d)\n" sum
    (63 * 64 / 2);
  let st = Policy.Engine.stats (Policy.Policy_module.engine pm) in
  Printf.printf "guard checks so far: %d (all allowed: %b)\n"
    st.Policy.Engine.checks
    (st.Policy.Engine.denied = 0);

  (* 5. A violating call: the same module pointed at user memory. The
     guard fires and the kernel panics — the paper's hard stop. *)
  let user_buf = Kernel.map_user kernel ~size:64 in
  print_endline "\npointing the module at user memory...";
  (try ignore (Kernel.call_symbol kernel "sum_region" [| user_buf; 64 |])
   with Kernel.Panic info ->
     Printf.printf "KERNEL PANIC: %s\n" info.Kernel.reason;
     print_endline "last kernel log lines:";
     List.iter (fun l -> print_endline ("  | " ^ l)) info.Kernel.log_tail);
  print_endline "\nquickstart done."
