(* The paper's headline scenario (§4): the e1000e network driver compiled
   with and without CARAT KOP, sending raw Ethernet frames. Shows the A/B
   throughput and sendmsg latency, the guard accounting, and that the
   transmitted bytes are identical under both builds (DMA is unguarded
   and unchanged).

   Run with: dune exec examples/nic_protection.exe *)

open Carat_kop

let run_technique technique =
  let config =
    {
      Testbed.default_config with
      machine = Machine.Presets.r350;
      technique;
    }
  in
  let tb = Testbed.create ~config () in
  (* warm up caches and predictor, then measure *)
  ignore
    (Testbed.run_pktgen tb
       { Net.Pktgen.default_config with count = 200; size = 128; seed = 42 });
  let r =
    Testbed.run_pktgen tb
      { Net.Pktgen.default_config with count = 2000; size = 128; seed = 7 }
  in
  (tb, r)

let () =
  print_endline "e1000e under CARAT KOP vs baseline (R350 model, 128B frames)";
  print_endline "";

  let tb_base, r_base = run_technique Testbed.Baseline in
  let tb_carat, r_carat = run_technique Testbed.Carat in

  let lat xs = Stats.Summary.of_ints xs in
  let lb = lat r_base.Net.Pktgen.latencies in
  let lc = lat r_carat.Net.Pktgen.latencies in

  Printf.printf "baseline: %8.0f pps   sendmsg median %5.0f cycles\n"
    r_base.Net.Pktgen.pps lb.Stats.Summary.median;
  Printf.printf "carat:    %8.0f pps   sendmsg median %5.0f cycles\n"
    r_carat.Net.Pktgen.pps lc.Stats.Summary.median;
  Printf.printf "overhead: %+.2f%% throughput, %+.0f cycles latency\n"
    ((r_base.Net.Pktgen.pps /. r_carat.Net.Pktgen.pps -. 1.0) *. 100.0)
    (lc.Stats.Summary.median -. lb.Stats.Summary.median);
  print_endline "";

  (* guard accounting on the protected build *)
  let m = tb_carat.Testbed.driver_kir in
  Printf.printf "driver: %d KIR instructions, %d functions\n"
    (Kir.Types.module_instr_count m)
    (List.length m.Kir.Types.funcs);
  Printf.printf "guards injected: %s (one per load/store, no optimization)\n"
    (match Kir.Types.meta_find m Passes.Guard_injection.meta_guard_count with
    | Some v -> v
    | None -> "?");
  let st =
    Policy.Engine.stats
      (Policy.Policy_module.engine tb_carat.Testbed.policy_module)
  in
  Printf.printf "guard checks executed: %d (denied: %d)\n"
    st.Policy.Engine.checks st.Policy.Engine.denied;
  print_endline "";

  (* both devices saw the same traffic *)
  Printf.printf "frames on the wire: baseline=%d carat=%d\n"
    (Nic.Device.tx_frames (Testbed.device tb_base))
    (Nic.Device.tx_frames (Testbed.device tb_carat));
  (match
     ( Nic.Device.recent_frames (Testbed.device tb_base),
       Nic.Device.recent_frames (Testbed.device tb_carat) )
   with
  | fb :: _, fc :: _ ->
    Printf.printf "last frame matches byte-for-byte: %b\n"
      (fb.Nic.Device.data = fc.Nic.Device.data);
    (match Net.Frame.ethertype_of fb.Nic.Device.data with
    | Some et -> Printf.printf "ethertype on the wire: 0x%04x\n" et
    | None -> ())
  | _ -> print_endline "no frames captured");
  print_endline "";
  print_endline "the driver ran restricted to the two-region policy; the";
  print_endline "performance cost of that protection is the numbers above."
