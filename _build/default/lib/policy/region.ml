(** Memory regions — the unit of CARAT KOP policy (§3.1): "each entry
    stores a region's lower bound, length, and protection flags". *)

let prot_read = Passes.Guard_injection.flag_read
let prot_write = Passes.Guard_injection.flag_write
let prot_rw = prot_read lor prot_write

type t = { base : int; len : int; prot : int; tag : string }

let v ?(tag = "") ~base ~len ~prot () =
  if len <= 0 then invalid_arg "Region.v: length must be positive";
  if base < 0 then invalid_arg "Region.v: base must be non-negative";
  { base; len; prot; tag }

let limit r = r.base + r.len

(** Does [r] fully contain the byte range [addr, addr+size)? *)
let contains r ~addr ~size = addr >= r.base && addr + size <= limit r

(** Does [r] permit an access with the given flag bitmap? *)
let permits r ~flags = flags land r.prot = flags

let overlaps a b = a.base < limit b && b.base < limit a

let prot_to_string prot =
  let r = if prot land prot_read <> 0 then "r" else "-" in
  let w = if prot land prot_write <> 0 then "w" else "-" in
  r ^ w

let to_string r =
  Printf.sprintf "[0x%x, 0x%x) %s%s" r.base (limit r) (prot_to_string r.prot)
    (if r.tag = "" then "" else " (" ^ r.tag ^ ")")

(* canonical policies used throughout the evaluation *)

(** The paper's two-region policy (§4.2 footnote): kernel addresses (the
    "high half") are allowed read-write, user addresses (the "low half")
    are disallowed. The deny rule is explicit (prot = 0) so that both
    halves match a region and the default action is never consulted. *)
let kernel_only =
  [
    v ~tag:"kernel-high-half" ~base:Kernel.Layout.kernel_base
      ~len:0x2FFF_FFFF_FFFF_FFFF ~prot:prot_rw ();
    v ~tag:"user-low-half" ~base:0x0 ~len:Kernel.Layout.kernel_base ~prot:0 ();
  ]

(** Synthetic padding regions for the region-count sweep (Fig 5): [n]
    distinct non-matching regions placed in an unused part of the user
    half, scanned (and rejected) before the real rules. *)
let padding n =
  List.init n (fun i ->
      v
        ~tag:(Printf.sprintf "pad-%d" i)
        ~base:(0x2000_0000 + (i * 0x10000))
        ~len:0x1000 ~prot:prot_rw ())

(** [n]-region policy with the same semantics as {!kernel_only}: (n-2)
    padding regions followed by the two real rules, so a conforming access
    pays a full scan — the worst case the paper's linear table can hit. *)
let kernel_only_padded n =
  if n < 2 then invalid_arg "kernel_only_padded: need at least 2 regions";
  padding (n - 2) @ kernel_only
