lib/policy/lookup_cache.ml: Array Hashtbl Kernel Linear_table Machine Region Structure
