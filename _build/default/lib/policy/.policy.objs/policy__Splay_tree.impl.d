lib/policy/splay_tree.ml: Hashtbl Kernel List Machine Printf Region Structure
