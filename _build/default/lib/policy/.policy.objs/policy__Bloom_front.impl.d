lib/policy/bloom_front.ml: Bytes Char Hashtbl Kernel Linear_table Machine Region Structure
