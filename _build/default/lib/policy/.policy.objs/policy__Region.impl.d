lib/policy/region.ml: Kernel List Passes Printf
