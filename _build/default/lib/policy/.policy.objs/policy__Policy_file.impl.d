lib/policy/policy_file.ml: Buffer Engine List Printf Region String
