lib/policy/structure.ml: Kernel Region
