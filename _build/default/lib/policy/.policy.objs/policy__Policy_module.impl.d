lib/policy/policy_module.ml: Engine Hashtbl Kernel Linear_table List Machine Passes Printf Region
