lib/policy/rb_tree.ml: Hashtbl Kernel List Machine Printf Region Structure
