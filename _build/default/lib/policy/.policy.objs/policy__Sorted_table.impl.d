lib/policy/sorted_table.ml: Array Hashtbl Kernel Machine Printf Region Structure
