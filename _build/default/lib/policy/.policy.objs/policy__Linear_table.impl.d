lib/policy/linear_table.ml: Array Hashtbl Kernel Machine Printf Region Structure
