lib/policy/engine.ml: Bloom_front Hashtbl Kernel Linear_table List Lookup_cache Machine Rb_tree Region Sorted_table Splay_tree Structure
