(** A miniature in-kernel filesystem — the substrate for the paper's §5
    file-protection extension: "CARAT KOP's memory guarding mechanism
    could be extended to restrict kernel module access to files by
    safeguarding memory regions associated with file system metadata or
    inodes".

    The design puts everything a module could corrupt into *addressable
    kernel memory*, so region policies can protect it:
    - the {b inode table}: a fixed array of 64-byte on-"disk" inodes
      (mode, size, uid, nlink, data pointer) in kernel heap memory;
    - per-file {b data extents}, separately allocated.

    Modules are expected to go through the exported VFS API
    ([vfs_read]/[vfs_write]/[vfs_getattr]/[vfs_chmod] natives — core
    kernel code, hence unguarded). A module that instead pokes the inode
    table directly (the classic rootkit move: clear the setuid bit check,
    resurrect an unlinked inode) hits a memory guard, if the operator's
    policy excludes the metadata region. *)

let inode_size = 64
let max_inodes = 64

(* inode field offsets *)
let off_mode = 0
let off_size = 8
let off_uid = 16
let off_nlink = 24
let off_data = 32
let off_capacity = 40

(* mode bits *)
let mode_read = 0o4
let mode_write = 0o2
let mode_setuid = 0o4000

type t = {
  kernel : Kernel.t;
  table_vaddr : int;
  mutable names : (string * int) list;  (** file name -> inode number *)
  mutable next_ino : int;
}

exception No_such_file of string
exception Fs_error of string

let create kernel : t =
  let table_vaddr = Kernel.kmalloc kernel ~size:(max_inodes * inode_size) in
  let t = { kernel; table_vaddr; names = []; next_ino = 1 } in
  (* natives: the legitimate VFS entry points (core kernel, unguarded) *)
  Kernel.register_native kernel "vfs_read" (fun k args ->
      match args with
      | [| ino; off; dst; len |] ->
        let inode = table_vaddr + (ino * inode_size) in
        let size = Kernel.read k ~addr:(inode + off_size) ~size:8 in
        let mode = Kernel.read k ~addr:(inode + off_mode) ~size:8 in
        if mode land mode_read = 0 then -1
        else begin
          let data = Kernel.read k ~addr:(inode + off_data) ~size:8 in
          let n = max 0 (min len (size - off)) in
          if n > 0 then
            ignore (Kernel.call_symbol k "memcpy" [| dst; data + off; n |]);
          n
        end
      | _ -> Kernel.panic k "vfs_read: bad arguments");
  Kernel.register_native kernel "vfs_write" (fun k args ->
      match args with
      | [| ino; off; src; len |] ->
        let inode = table_vaddr + (ino * inode_size) in
        let mode = Kernel.read k ~addr:(inode + off_mode) ~size:8 in
        let capacity = Kernel.read k ~addr:(inode + off_capacity) ~size:8 in
        if mode land mode_write = 0 then -1
        else if off + len > capacity then -1
        else begin
          let data = Kernel.read k ~addr:(inode + off_data) ~size:8 in
          if len > 0 then
            ignore (Kernel.call_symbol k "memcpy" [| data + off; src; len |]);
          let size = Kernel.read k ~addr:(inode + off_size) ~size:8 in
          if off + len > size then
            Kernel.write k ~addr:(inode + off_size) ~size:8 (off + len);
          len
        end
      | _ -> Kernel.panic k "vfs_write: bad arguments");
  Kernel.register_native kernel "vfs_getattr" (fun k args ->
      match args with
      | [| ino; which |] ->
        let inode = table_vaddr + (ino * inode_size) in
        let off =
          match which with
          | 0 -> off_mode
          | 1 -> off_size
          | 2 -> off_uid
          | 3 -> off_nlink
          | _ -> off_mode
        in
        Kernel.read k ~addr:(inode + off) ~size:8
      | _ -> Kernel.panic k "vfs_getattr: bad arguments");
  Kernel.register_native kernel "vfs_chmod" (fun k args ->
      match args with
      | [| ino; mode |] ->
        (* the API refuses to set setuid from module context; that is
           exactly the bit a rootkit wants, and exactly why it would try
           direct inode writes instead *)
        let inode = table_vaddr + (ino * inode_size) in
        let masked = mode land lnot mode_setuid in
        Kernel.write k ~addr:(inode + off_mode) ~size:8 masked;
        0
      | _ -> Kernel.panic k "vfs_chmod: bad arguments");
  t

let inode_vaddr t ino = t.table_vaddr + (ino * inode_size)

let lookup t name =
  match List.assoc_opt name t.names with
  | Some ino -> ino
  | None -> raise (No_such_file name)

(** Create a file with a data extent of [capacity] bytes. *)
let create_file t ~name ~mode ~capacity : int =
  if t.next_ino >= max_inodes then raise (Fs_error "inode table full");
  if List.mem_assoc name t.names then raise (Fs_error ("exists: " ^ name));
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  let data = Kernel.kmalloc t.kernel ~size:capacity in
  let inode = inode_vaddr t ino in
  Kernel.write t.kernel ~addr:(inode + off_mode) ~size:8 mode;
  Kernel.write t.kernel ~addr:(inode + off_size) ~size:8 0;
  Kernel.write t.kernel ~addr:(inode + off_uid) ~size:8 0;
  Kernel.write t.kernel ~addr:(inode + off_nlink) ~size:8 1;
  Kernel.write t.kernel ~addr:(inode + off_data) ~size:8 data;
  Kernel.write t.kernel ~addr:(inode + off_capacity) ~size:8 capacity;
  t.names <- (name, ino) :: t.names;
  ino

(** Kernel-side write of file contents (e.g. populating /etc/shadow). *)
let write_contents t ~ino s =
  let inode = inode_vaddr t ino in
  let data = Kernel.read t.kernel ~addr:(inode + off_data) ~size:8 in
  Kernel.write_string t.kernel ~addr:data s;
  Kernel.write t.kernel ~addr:(inode + off_size) ~size:8 (String.length s)

let read_contents t ~ino =
  let inode = inode_vaddr t ino in
  let data = Kernel.read t.kernel ~addr:(inode + off_data) ~size:8 in
  let size = Kernel.read t.kernel ~addr:(inode + off_size) ~size:8 in
  Kernel.read_string t.kernel ~addr:data ~len:size

let mode_of t ~ino =
  Kernel.read t.kernel ~addr:(inode_vaddr t ino + off_mode) ~size:8

(** The region covering all inode metadata — what a file-protection
    policy excludes from module access. *)
let metadata_region t =
  Policy.Region.v ~tag:"kernfs-inode-table" ~base:t.table_vaddr
    ~len:(max_inodes * inode_size) ~prot:0 ()

(** The region covering one file's data extent, with the given module
    permissions. *)
let data_region t ~ino ~prot =
  let inode = inode_vaddr t ino in
  let data = Kernel.read t.kernel ~addr:(inode + off_data) ~size:8 in
  let capacity = Kernel.read t.kernel ~addr:(inode + off_capacity) ~size:8 in
  Policy.Region.v ~tag:"kernfs-data" ~base:data ~len:capacity ~prot ()
