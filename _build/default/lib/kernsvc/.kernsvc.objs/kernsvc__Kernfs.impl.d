lib/kernsvc/kernfs.ml: Kernel List Policy String
