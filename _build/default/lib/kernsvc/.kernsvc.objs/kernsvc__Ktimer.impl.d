lib/kernsvc/ktimer.ml: Kernel List Machine
