lib/kernsvc/msgq.ml: Kernel List Policy Printf String
