lib/net/pktgen.ml: Array Frame Kernel Machine Netstack
