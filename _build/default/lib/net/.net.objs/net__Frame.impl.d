lib/net/frame.ml: Bytes Char List Printf String
