lib/net/netstack.ml: Array Kernel Machine Nic
