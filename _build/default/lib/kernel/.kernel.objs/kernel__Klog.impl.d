lib/kernel/klog.ml: List Printf String
