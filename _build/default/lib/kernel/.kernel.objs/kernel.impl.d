lib/kernel/kernel.ml: Array Char Hashtbl Kir Klog Layout List Machine Memory Passes Printf String
