lib/kernel/memory.ml: Bytes Char String
