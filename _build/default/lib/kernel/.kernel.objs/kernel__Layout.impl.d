lib/kernel/layout.ml:
