(** Kernel log ring buffer — the destination of [printk] and of the policy
    module's violation reports. Tests assert on its contents; the panic
    report carries its tail. *)

type level = Debug | Info | Warn | Err | Crit

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Err -> "err"
  | Crit -> "crit"

type entry = { level : level; message : string; seq : int }

type t = {
  capacity : int;
  mutable entries : entry list;  (** newest first *)
  mutable next_seq : int;
  mutable echo : bool;  (** also print to stderr (like a serial console) *)
}

let create ?(capacity = 1024) () = { capacity; entries = []; next_seq = 0; echo = false }

let set_echo t b = t.echo <- b

let log t level fmt =
  Printf.ksprintf
    (fun message ->
      let e = { level; message; seq = t.next_seq } in
      t.next_seq <- t.next_seq + 1;
      t.entries <-
        e
        ::
        (if List.length t.entries >= t.capacity then
           List.filteri (fun i _ -> i < t.capacity - 1) t.entries
         else t.entries);
      if t.echo then
        Printf.eprintf "[kernel %s] %s\n%!" (level_to_string level) message)
    fmt

let printk t fmt = log t Info fmt

(** Newest-first list of entries. *)
let entries t = t.entries

(** Oldest-first tail of the last [n] messages, as the panic screen would
    show. *)
let tail t n =
  let rec take k = function
    | [] -> []
    | e :: rest -> if k = 0 then [] else e :: take (k - 1) rest
  in
  List.rev_map (fun e -> e.message) (take n t.entries)

let contains t substring =
  List.exists
    (fun e ->
      let len_s = String.length substring and len_m = String.length e.message in
      let rec at i =
        if i + len_s > len_m then false
        else if String.sub e.message i len_s = substring then true
        else at (i + 1)
      in
      at 0)
    t.entries

let clear t = t.entries <- []
