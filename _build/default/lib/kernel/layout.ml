(** Simulated kernel address-space layout.

    Linux on x86-64 splits the canonical address space into a user "low
    half" and a kernel "high half", with all of physical memory remapped
    at a fixed offset (the direct map) and modules in a separate vmalloc
    range. We reproduce that structure inside OCaml's 63-bit native-int
    range (DESIGN.md documents the substitution): the kernel half starts
    at [kernel_base] instead of 0xffff800000000000.

    The two-region policy the paper uses for most experiments ("kernel
    addresses are allowed, user addresses are disallowed") is expressed
    directly against these constants. *)

(* user half *)
let user_base = 0x0000_0000_0000_1000
let user_top = 0x0FFF_FFFF_FFFF_FFFF

(* kernel half *)
let kernel_base = 0x1000_0000_0000_0000

(* kernel image: text then static data *)
let kernel_text_base = kernel_base
let kernel_text_size = 0x0020_0000 (* 2 MiB of core-kernel text *)
let kernel_data_base = kernel_text_base + kernel_text_size
let kernel_data_size = 0x0020_0000

(* direct map of all physical memory ("high half" remap) *)
let direct_map_base = 0x1100_0000_0000_0000

(* module / vmalloc area *)
let module_base = 0x1200_0000_0000_0000
let module_area_size = 0x1000_0000

(* MMIO window where device BARs get ioremap'd *)
let mmio_base = 0x1300_0000_0000_0000
let mmio_area_size = 0x1000_0000

let is_user_addr a = a >= user_base && a <= user_top
let is_kernel_addr a = a >= kernel_base
let is_module_addr a = a >= module_base && a < module_base + module_area_size
let is_mmio_addr a = a >= mmio_base && a < mmio_base + mmio_area_size

let direct_map_of_phys phys = direct_map_base + phys

let phys_of_direct_map virt =
  if virt < direct_map_base then
    invalid_arg "phys_of_direct_map: not a direct-map address"
  else virt - direct_map_base
