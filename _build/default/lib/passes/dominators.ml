(** Dominator computation over a {!Kir.Cfg}, using the Cooper-Harvey-
    Kennedy iterative algorithm on reverse postorder. Powers natural-loop
    detection for the guard-hoisting optimization. *)

type t = {
  cfg : Kir.Cfg.t;
  idom : int array;  (** immediate dominator; entry maps to itself,
                         unreachable blocks to -1 *)
  rpo_number : int array;
}

let compute (cfg : Kir.Cfg.t) : t =
  let n = Kir.Cfg.n_blocks cfg in
  let rpo = Kir.Cfg.reverse_postorder cfg in
  let rpo_number = Array.make n (-1) in
  List.iteri (fun k i -> rpo_number.(i) <- k) rpo;
  let idom = Array.make n (-1) in
  if n > 0 then begin
    idom.(0) <- 0;
    let intersect a b =
      let a = ref a and b = ref b in
      while !a <> !b do
        while rpo_number.(!a) > rpo_number.(!b) do a := idom.(!a) done;
        while rpo_number.(!b) > rpo_number.(!a) do b := idom.(!b) done
      done;
      !a
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun i ->
          if i <> 0 then begin
            let preds =
              List.filter (fun p -> idom.(p) <> -1) cfg.Kir.Cfg.pred.(i)
            in
            match preds with
            | [] -> ()
            | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(i) <> new_idom then begin
                idom.(i) <- new_idom;
                changed := true
              end
          end)
        rpo
    done
  end;
  { cfg; idom; rpo_number }

(** [dominates t a b] is true iff block [a] dominates block [b]. Every
    block dominates itself. *)
let dominates t a b =
  if a = b then true
  else begin
    let rec up x = if x = a then true else if x = t.idom.(x) then false else up t.idom.(x) in
    if t.idom.(b) = -1 then false else up t.idom.(b)
  end

let idom t i = if i = 0 then None else if t.idom.(i) = -1 then None else Some t.idom.(i)

(** Children lists of the dominator tree, indexed by block. *)
let dom_tree t =
  let n = Array.length t.idom in
  let children = Array.make n [] in
  for i = n - 1 downto 1 do
    let d = t.idom.(i) in
    if d <> -1 && d <> i then children.(d) <- i :: children.(d)
  done;
  children
