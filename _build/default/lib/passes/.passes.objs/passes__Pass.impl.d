lib/passes/pass.ml: Kir List Printf
