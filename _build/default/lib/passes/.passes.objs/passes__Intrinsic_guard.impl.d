lib/passes/intrinsic_guard.ml: Kir List Pass
