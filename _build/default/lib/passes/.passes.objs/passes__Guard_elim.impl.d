lib/passes/guard_elim.ml: Guard_injection Hashtbl Kir List Pass Printf
