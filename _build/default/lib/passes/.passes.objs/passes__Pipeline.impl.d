lib/passes/pipeline.ml: Attest Cfi_guard Dce Guard_elim Guard_hoist Guard_injection Intrinsic_guard Pass Signing
