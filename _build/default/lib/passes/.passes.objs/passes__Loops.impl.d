lib/passes/loops.ml: Array Dominators Hashtbl Kir List
