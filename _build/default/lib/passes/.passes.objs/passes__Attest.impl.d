lib/passes/attest.ml: Kir List Pass
