lib/passes/signing.ml: Attest Cfi_guard Char Guard_injection Intrinsic_guard Kir List Pass Printf String
