lib/passes/dominators.ml: Array Kir List
