lib/passes/dce.ml: Kir List Pass
