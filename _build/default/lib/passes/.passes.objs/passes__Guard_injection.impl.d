lib/passes/guard_injection.ml: Hashtbl Kir List Pass
