lib/passes/cfi_guard.ml: Kir List Pass
