lib/passes/guard_hoist.ml: Array Guard_injection Hashtbl Kir List Loops Pass
