(** Minimal pass manager. A pass is a named in-place transformation over a
    KIR module; pipelines run passes in order and collect remarks (free-
    form key/value observations such as "guards inserted: 412"). Mirrors
    the paper's setup where the CARAT KOP "compiler" is an LLVM pass
    invoked by a wrapper script around clang. *)

type result = { changed : bool; remarks : (string * string) list }

let unchanged = { changed = false; remarks = [] }

type t = { name : string; run : Kir.Types.modul -> result }

let make name run = { name; run }

exception Pass_failed of string * string
(** [Pass_failed (pass_name, reason)]: the pass refused the module (e.g.
    attestation found inline assembly). *)

let fail pass_name fmt =
  Printf.ksprintf (fun reason -> raise (Pass_failed (pass_name, reason))) fmt

(** Run a pipeline over [m], returning per-pass results in order. The
    module is mutated in place. *)
let run_pipeline (pipeline : t list) (m : Kir.Types.modul) :
    (string * result) list =
  List.map (fun p -> (p.name, p.run m)) pipeline

(** Like {!run_pipeline} but verifies the module after each pass, raising
    {!Kir.Verify.Invalid} as soon as a pass breaks structural validity.
    Used by tests and by the [kop_compile] driver. *)
let run_pipeline_checked (pipeline : t list) (m : Kir.Types.modul) :
    (string * result) list =
  Kir.Verify.check_exn m;
  List.map
    (fun p ->
      let r = (p.name, p.run m) in
      Kir.Verify.check_exn m;
      r)
    pipeline
