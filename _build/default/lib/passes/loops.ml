(** Natural-loop detection from back edges (an edge [t -> h] where [h]
    dominates [t]). A loop is its header plus every block that can reach
    the back-edge tail without passing through the header. Nested loops
    sharing a header are merged, as is conventional. *)

type loop = {
  header : int;
  body : int list;  (** includes the header *)
  back_edges : (int * int) list;
}

type t = { cfg : Kir.Cfg.t; loops : loop list }

let compute (cfg : Kir.Cfg.t) : t =
  let dom = Dominators.compute cfg in
  let n = Kir.Cfg.n_blocks cfg in
  let back_edges = ref [] in
  for t = 0 to n - 1 do
    List.iter
      (fun h -> if Dominators.dominates dom h t then back_edges := (t, h) :: !back_edges)
      cfg.Kir.Cfg.succ.(t)
  done;
  (* group back edges by header *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (t, h) ->
      let prev = try Hashtbl.find by_header h with Not_found -> [] in
      Hashtbl.replace by_header h ((t, h) :: prev))
    !back_edges;
  let loops =
    Hashtbl.fold
      (fun header edges acc ->
        let in_loop = Array.make n false in
        in_loop.(header) <- true;
        let rec pull t =
          if not in_loop.(t) then begin
            in_loop.(t) <- true;
            List.iter pull cfg.Kir.Cfg.pred.(t)
          end
        in
        List.iter (fun (t, _) -> pull t) edges;
        let body = ref [] in
        for i = n - 1 downto 0 do
          if in_loop.(i) then body := i :: !body
        done;
        { header; body = !body; back_edges = edges } :: acc)
      by_header []
  in
  let loops = List.sort (fun a b -> compare a.header b.header) loops in
  { cfg; loops }

let in_loop l i = List.mem i l.body

(** Blocks outside the loop that branch to its header. If there is exactly
    one and it has the header as unique successor, it can serve as a
    preheader for hoisted guards. *)
let outside_preds t l =
  List.filter (fun p -> not (in_loop l p)) t.cfg.Kir.Cfg.pred.(l.header)

let loop_depth t i =
  List.length (List.filter (fun l -> in_loop l i) t.loops)
