(** Canonical pass pipelines.

    [kop_default] is the paper's compiler: attest, inject a guard before
    every load/store with no optimization, sign.

    [kop_optimized] adds the CARAT-CAKE-style guard optimizations the
    paper deliberately omits (redundant-guard elimination and loop-
    invariant hoisting); used by the [abl-opt] ablation.

    [baseline] only signs — the untransformed module for A/B runs. *)

let default_key = "kop-vendor-key"
let default_signer = "kop-ocaml"

(* §5 extensions, off by default to stay faithful to the paper's
   prototype: intrinsic guarding and indirect-call (CFI) guarding *)
let extension_passes ~guard_intrinsics ~guard_cfi =
  (if guard_intrinsics then [ Intrinsic_guard.pass () ] else [])
  @ if guard_cfi then [ Cfi_guard.pass () ] else []

let kop_default ?(key = default_key) ?(signer = default_signer)
    ?(config = Guard_injection.default_config) ?(guard_intrinsics = false)
    ?(guard_cfi = false) () =
  [ Dce.pass (); Attest.pass (); Guard_injection.pass ~config () ]
  @ extension_passes ~guard_intrinsics ~guard_cfi
  @ [ Signing.pass ~key ~signer () ]

let kop_optimized ?(key = default_key) ?(signer = default_signer)
    ?(config = Guard_injection.default_config) ?(guard_intrinsics = false)
    ?(guard_cfi = false) () =
  [
    Dce.pass ();
    Attest.pass ();
    Guard_injection.pass ~config ();
    Guard_elim.pass ~guard_symbol:config.Guard_injection.guard_symbol ();
    Guard_hoist.pass ~guard_symbol:config.Guard_injection.guard_symbol ();
  ]
  @ extension_passes ~guard_intrinsics ~guard_cfi
  @ [ Signing.pass ~key ~signer () ]

(** Sign without transforming: used for baseline modules so that the
    loader accepts them in permissive mode while A/B tests can still
    detect that no guarding was asserted. *)
let baseline_sign ?(key = default_key) ?(signer = default_signer) () =
  [ Dce.pass (); Signing.pass ~key ~signer () ]

(** Compile (transform + sign) a module in place, returning the pass
    remarks. This is the "wrapper script around clang" entry point. *)
let compile ?(optimize = false) ?key ?signer ?config ?guard_intrinsics
    ?guard_cfi m =
  let pipeline =
    if optimize then
      kop_optimized ?key ?signer ?config ?guard_intrinsics ?guard_cfi ()
    else kop_default ?key ?signer ?config ?guard_intrinsics ?guard_cfi ()
  in
  Pass.run_pipeline_checked pipeline m
