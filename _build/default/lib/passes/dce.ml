(** Unreachable-block elimination. A hygiene pass: the driver generator
    and the structured-control-flow builder can leave join blocks that are
    never reached; removing them keeps static instruction counts honest
    for the [tab-guards] accounting. *)

open Kir.Types

let run (m : modul) : Pass.result =
  let removed = ref 0 in
  List.iter
    (fun f ->
      let cfg = Kir.Cfg.of_func f in
      let dead = Kir.Cfg.unreachable_blocks cfg in
      if dead <> [] then begin
        removed := !removed + List.length dead;
        let dead_labels = List.map (fun b -> b.b_label) dead in
        f.blocks <-
          List.filter (fun b -> not (List.mem b.b_label dead_labels)) f.blocks
      end)
    m.funcs;
  {
    Pass.changed = !removed > 0;
    remarks = [ ("blocks_removed", string_of_int !removed) ];
  }

let pass () = Pass.make "dce" run
