(** Control-flow-integrity guarding for indirect calls — the other §5
    extension: "CARAT KOP also does not prevent control-flow attacks,
    where a module might call an arbitrary function in the kernel ...
    Incorporating guarded modules into the CARAT KOP compilation flow
    would help CARAT KOP make assurances about control flow integrity".

    The pass inserts, before every [Callind], a call to
    [carat_cfi_guard(target)]. The policy module checks the target
    address against its allow-list of call targets (populated by the
    operator per module, typically from the module's own exports plus
    the kernel API it legitimately needs). *)

open Kir.Types

let guard_symbol = "carat_cfi_guard"
let meta_guarded = "carat.kop.cfi_guarded"
let meta_count = "carat.kop.cfi_guards"

let run (m : modul) : Pass.result =
  if meta_find m meta_guarded = Some "true" then
    Pass.fail "cfi-guard" "module %s already CFI-guarded" m.m_name;
  let count = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          blk.body <-
            List.concat_map
              (fun i ->
                match i with
                | Callind { fn; _ } ->
                  incr count;
                  [
                    Call { dst = None; callee = guard_symbol; args = [ fn ] };
                    i;
                  ]
                | i -> [ i ])
              blk.body)
        f.blocks)
    m.funcs;
  if !count > 0 && not (List.mem_assoc guard_symbol m.externs) then
    m.externs <- m.externs @ [ (guard_symbol, 1) ];
  meta_set m meta_guarded "true";
  meta_set m meta_count (string_of_int !count);
  {
    Pass.changed = !count > 0;
    remarks = [ ("cfi_guards", string_of_int !count) ];
  }

let pass () = Pass.make "cfi-guard" run

let count_guards (m : modul) =
  let in_block b =
    List.fold_left
      (fun n i ->
        match i with
        | Call { callee; _ } when callee = guard_symbol -> n + 1
        | _ -> n)
      0 b.body
  in
  List.fold_left
    (fun n f -> n + List.fold_left (fun n b -> n + in_block b) 0 f.blocks)
    0 m.funcs

(** Every indirect call is immediately preceded by a CFI guard on the
    same target operand. *)
let fully_guarded (m : modul) : bool =
  let block_ok b =
    let rec go prev body =
      match body with
      | [] -> true
      | (Callind { fn; _ } as i) :: rest ->
        let ok =
          match prev with
          | Some (Call { callee; args = [ t ]; _ }) ->
            callee = guard_symbol && t = fn
          | _ -> false
        in
        ok && go (Some i) rest
      | i :: rest -> go (Some i) rest
    in
    go None b.body
  in
  List.for_all (fun f -> List.for_all block_ok f.blocks) m.funcs
