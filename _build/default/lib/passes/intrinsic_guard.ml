(** Privileged-intrinsic guarding — the extension sketched in §5 of the
    paper: "instrumentation and wrappers to these builtins could be added
    during compilation, such that a guard is injected and a different
    policy table could be consulted to determine if a given kernel module
    has access to a privileged intrinsic".

    The pass inserts, before every [Intrinsic] instruction, a call to
    [carat_intrinsic_guard(intrinsic_id)]. The policy module's intrinsic
    permission bitmap then decides; denial is handled like a memory guard
    denial (log + panic). Ids are taken from the kernel's stable intrinsic
    registry, so the compiler and the policy module agree by
    construction. *)

open Kir.Types

let guard_symbol = "carat_intrinsic_guard"
let meta_guarded = "carat.kop.intrinsics_guarded"
let meta_count = "carat.kop.intrinsic_guards"

(** The id table must match the kernel's registry; duplicated here so the
    compiler has no dependency on the kernel. Checked by tests. *)
let known = [ "rdtsc"; "rdmsr"; "wrmsr"; "cli"; "sti"; "invlpg"; "pause"; "hlt" ]

let id_of_intrinsic name =
  let rec go i = function
    | [] -> None
    | n :: _ when n = name -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 known

let run (m : modul) : Pass.result =
  if meta_find m meta_guarded = Some "true" then
    Pass.fail "intrinsic-guard" "module %s already intrinsic-guarded" m.m_name;
  let count = ref 0 in
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          blk.body <-
            List.concat_map
              (fun i ->
                match i with
                | Intrinsic { iname; _ } -> (
                  match id_of_intrinsic iname with
                  | Some id ->
                    incr count;
                    [
                      Call
                        {
                          dst = None;
                          callee = guard_symbol;
                          args = [ Imm id ];
                        };
                      i;
                    ]
                  | None ->
                    Pass.fail "intrinsic-guard"
                      "unknown intrinsic %s in @%s cannot be certified" iname
                      f.f_name)
                | i -> [ i ])
              blk.body)
        f.blocks)
    m.funcs;
  if !count > 0 && not (List.mem_assoc guard_symbol m.externs) then
    m.externs <- m.externs @ [ (guard_symbol, 1) ];
  meta_set m meta_guarded "true";
  meta_set m meta_count (string_of_int !count);
  {
    Pass.changed = !count > 0;
    remarks = [ ("intrinsic_guards", string_of_int !count) ];
  }

let pass () = Pass.make "intrinsic-guard" run

let count_guards (m : modul) =
  let in_block b =
    List.fold_left
      (fun n i ->
        match i with
        | Call { callee; _ } when callee = guard_symbol -> n + 1
        | _ -> n)
      0 b.body
  in
  List.fold_left
    (fun n f -> n + List.fold_left (fun n b -> n + in_block b) 0 f.blocks)
    0 m.funcs

(** Every intrinsic is immediately preceded by its guard. *)
let fully_guarded (m : modul) : bool =
  let block_ok b =
    let rec go prev body =
      match body with
      | [] -> true
      | (Intrinsic { iname; _ } as i) :: rest ->
        let ok =
          match (prev, id_of_intrinsic iname) with
          | Some (Call { callee; args = [ Imm id ]; _ }), Some want ->
            callee = guard_symbol && id = want
          | _ -> false
        in
        ok && go (Some i) rest
      | i :: rest -> go (Some i) rest
    in
    go None b.body
  in
  List.for_all (fun f -> List.for_all block_ok f.blocks) m.funcs
