lib/nic/device.ml: Array Hashtbl Kernel List Machine Regs String
