lib/nic/regs.ml:
