lib/nic/driver_gen.ml: Char Kir List Printf Regs String
