(** Core type definitions for KIR, the kernel intermediate representation.

    KIR is a small, typed, LLVM-like three-address code over an unbounded
    set of virtual registers. It is deliberately *not* SSA: the CARAT KOP
    transform only needs to find loads and stores and insert calls before
    them, and a mutable-register IR keeps both the interpreter and the
    passes simple. Functions are lists of labeled basic blocks; the first
    block is the entry block. *)

type ty = I8 | I16 | I32 | I64 | Ptr

let size_of_ty = function I8 -> 1 | I16 -> 2 | I32 -> 4 | I64 -> 8 | Ptr -> 8

let string_of_ty = function
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | Ptr -> "ptr"

type reg = string
type label = string

(** Operand values. [Sym s] denotes the link-time address of a global or
    function named [s]; it is resolved by the module loader. *)
type value = Reg of reg | Imm of int | Sym of string

type access = Read | Write

let string_of_access = function Read -> "read" | Write -> "write"

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Lshr | Ashr

type cond = Eq | Ne | Slt | Sle | Sgt | Sge | Ult | Ule | Ugt | Uge

type instr =
  | Binop of { dst : reg; op : binop; ty : ty; a : value; b : value }
  | Icmp of { dst : reg; cond : cond; ty : ty; a : value; b : value }
  | Load of { dst : reg; ty : ty; addr : value }
  | Store of { ty : ty; v : value; addr : value }
  | Alloca of { dst : reg; size : int }
      (** Reserves [size] bytes in the current frame; yields their address. *)
  | Gep of { dst : reg; base : value; idx : value; scale : int }
      (** dst <- base + idx * scale. Address arithmetic, no memory access. *)
  | Mov of { dst : reg; ty : ty; src : value }
  | Call of { dst : reg option; callee : string; args : value list }
  | Callind of { dst : reg option; fn : value; args : value list }
  | Select of { dst : reg; cond : value; if_true : value; if_false : value }
  | Inline_asm of string
      (** Opaque assembly. The attestation pass rejects modules containing
          this, exactly as CARAT KOP's compiler refuses to certify them. *)
  | Intrinsic of { dst : reg option; iname : string; args : value list }
      (** A privileged compiler builtin (rdmsr, wrmsr, cli, ...). Unlike
          [Inline_asm], the compiler can see these: the paper's §5 notes
          that "instrumentation and wrappers to these builtins could be
          added during compilation, such that a guard is injected" — the
          [Intrinsic_guard] pass implements exactly that. *)

type terminator =
  | Ret of value option
  | Br of label
  | Cond_br of { cond : value; if_true : label; if_false : label }
  | Switch of { v : value; cases : (int * label) list; default : label }
  | Unreachable

type block = {
  b_label : label;
  mutable body : instr list;
  mutable term : terminator;
}

type func = {
  f_name : string;
  params : (reg * ty) list;
  ret_ty : ty option;
  mutable blocks : block list;
}

(** A global data object owned by the module. [g_init] holds initial bytes
    (zero-filled to [g_size] at load time). *)
type global = {
  g_name : string;
  g_size : int;
  g_init : string option;
  g_writable : bool;
}

type modul = {
  m_name : string;
  mutable globals : global list;
  mutable funcs : func list;
  mutable externs : (string * int) list;  (** imported symbol, arity *)
  mutable meta : (string * string) list;
      (** free-form key/value metadata: signature, attestation marks,
          transform provenance. *)
}

let find_func m name = List.find_opt (fun f -> f.f_name = name) m.funcs
let find_block f lbl = List.find_opt (fun b -> b.b_label = lbl) f.blocks

let entry_block f =
  match f.blocks with
  | [] -> invalid_arg ("entry_block: function " ^ f.f_name ^ " has no blocks")
  | b :: _ -> b

let meta_find m key = List.assoc_opt key m.meta

let meta_set m key v =
  m.meta <- (key, v) :: List.remove_assoc key m.meta

(** Registers written by an instruction, if any. *)
let def_of_instr = function
  | Binop { dst; _ } | Icmp { dst; _ } | Load { dst; _ }
  | Alloca { dst; _ } | Gep { dst; _ } | Mov { dst; _ }
  | Select { dst; _ } ->
    Some dst
  | Call { dst; _ } | Callind { dst; _ } | Intrinsic { dst; _ } -> dst
  | Store _ | Inline_asm _ -> None

(** Operand values read by an instruction. *)
let uses_of_instr = function
  | Binop { a; b; _ } | Icmp { a; b; _ } -> [ a; b ]
  | Load { addr; _ } -> [ addr ]
  | Store { v; addr; _ } -> [ v; addr ]
  | Alloca _ | Inline_asm _ -> []
  | Gep { base; idx; _ } -> [ base; idx ]
  | Mov { src; _ } -> [ src ]
  | Call { args; _ } | Intrinsic { args; _ } -> args
  | Callind { fn; args; _ } -> fn :: args
  | Select { cond; if_true; if_false; _ } -> [ cond; if_true; if_false ]

let uses_of_term = function
  | Ret (Some v) -> [ v ]
  | Ret None | Br _ | Unreachable -> []
  | Cond_br { cond; _ } -> [ cond ]
  | Switch { v; _ } -> [ v ]

(** Successor labels of a terminator, in branch order. *)
let successors = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | Cond_br { if_true; if_false; _ } -> [ if_true; if_false ]
  | Switch { cases; default; _ } -> List.map snd cases @ [ default ]

let instr_count f =
  List.fold_left (fun n b -> n + List.length b.body + 1) 0 f.blocks

let module_instr_count m =
  List.fold_left (fun n f -> n + instr_count f) 0 m.funcs

(** Loads and stores in a function, for static accounting. *)
let memory_op_count f =
  let in_block b =
    List.fold_left
      (fun n i ->
        match i with Load _ | Store _ -> n + 1 | _ -> n)
      0 b.body
  in
  List.fold_left (fun n b -> n + in_block b) 0 f.blocks

let module_memory_op_count m =
  List.fold_left (fun n f -> n + memory_op_count f) 0 m.funcs
