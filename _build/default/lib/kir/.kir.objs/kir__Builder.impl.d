lib/kir/builder.ml: List Printf Types
