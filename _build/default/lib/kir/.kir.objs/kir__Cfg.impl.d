lib/kir/cfg.ml: Array Hashtbl List Types
