lib/kir/types.ml: List
