lib/kir/parser.ml: List Printer Printf String Types
