lib/kir/printer.ml: Buffer Char List Printf String Types
