lib/kir/verify.ml: Hashtbl List Printf String Types
