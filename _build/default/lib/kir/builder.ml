(** Imperative construction of KIR modules, in the style of LLVM's
    [IRBuilder]. A builder holds a current module, function and insertion
    block; [instr]s are appended to the insertion block and fresh register
    names are generated on demand.

    {[
      let b = Builder.create "demo" in
      let f = Builder.start_func b "sum" ~params:[ ("%n", I64) ] ~ret:(Some I64) in
      ignore f;
      let acc = Builder.add b I64 (Reg "%n") (Imm 1) in
      Builder.ret b (Some acc)
    ]} *)

open Types

type t = {
  m : modul;
  mutable cur_func : func option;
  mutable cur_block : block option;
  mutable next_reg : int;
  mutable next_label : int;
}

let create ?(meta = []) name =
  {
    m = { m_name = name; globals = []; funcs = []; externs = []; meta };
    cur_func = None;
    cur_block = None;
    next_reg = 0;
    next_label = 0;
  }

let modul b = b.m

let fresh_reg ?(hint = "t") b =
  let r = Printf.sprintf "%%%s%d" hint b.next_reg in
  b.next_reg <- b.next_reg + 1;
  r

let fresh_label ?(hint = "L") b =
  let l = Printf.sprintf "%s%d" hint b.next_label in
  b.next_label <- b.next_label + 1;
  l

let declare_extern b name ~arity =
  if not (List.mem_assoc name b.m.externs) then
    b.m.externs <- b.m.externs @ [ (name, arity) ]

let declare_global b ?(writable = true) ?init name ~size =
  let g = { g_name = name; g_size = size; g_init = init; g_writable = writable } in
  b.m.globals <- b.m.globals @ [ g ];
  g

let cur_func_exn b =
  match b.cur_func with
  | Some f -> f
  | None -> invalid_arg "Builder: no current function"

let cur_block_exn b =
  match b.cur_block with
  | Some blk -> blk
  | None -> invalid_arg "Builder: no current block"

(** Begin a new function and its entry block; subsequent instructions are
    appended there. *)
let start_func b name ~params ~ret =
  let entry = { b_label = "entry"; body = []; term = Unreachable } in
  let f = { f_name = name; params; ret_ty = ret; blocks = [ entry ] } in
  b.m.funcs <- b.m.funcs @ [ f ];
  b.cur_func <- Some f;
  b.cur_block <- Some entry;
  f

(** Create (but do not switch to) a new block in the current function. *)
let new_block b ?hint () =
  let f = cur_func_exn b in
  let lbl = fresh_label ?hint b in
  let blk = { b_label = lbl; body = []; term = Unreachable } in
  f.blocks <- f.blocks @ [ blk ];
  blk

let position_at b blk = b.cur_block <- Some blk

let emit b i =
  let blk = cur_block_exn b in
  blk.body <- blk.body @ [ i ]

let set_term b t =
  let blk = cur_block_exn b in
  blk.term <- t

(* -- instruction helpers; each returns the destination register -- *)

let binop b op ty a v =
  let dst = fresh_reg b in
  emit b (Binop { dst; op; ty; a; b = v });
  Reg dst

let add b ty a v = binop b Add ty a v
let sub b ty a v = binop b Sub ty a v
let mul b ty a v = binop b Mul ty a v
let and_ b ty a v = binop b And ty a v
let or_ b ty a v = binop b Or ty a v
let xor b ty a v = binop b Xor ty a v
let shl b ty a v = binop b Shl ty a v
let lshr b ty a v = binop b Lshr ty a v

let icmp b cond ty a v =
  let dst = fresh_reg ~hint:"c" b in
  emit b (Icmp { dst; cond; ty; a; b = v });
  Reg dst

let load b ty addr =
  let dst = fresh_reg ~hint:"v" b in
  emit b (Load { dst; ty; addr });
  Reg dst

let store b ty v addr = emit b (Store { ty; v; addr })

let alloca b size =
  let dst = fresh_reg ~hint:"p" b in
  emit b (Alloca { dst; size });
  Reg dst

let gep b base idx ~scale =
  let dst = fresh_reg ~hint:"a" b in
  emit b (Gep { dst; base; idx; scale });
  Reg dst

let mov b ty src =
  let dst = fresh_reg b in
  emit b (Mov { dst; ty; src });
  Reg dst

(** Re-assign an existing register (KIR is not SSA). *)
let mov_to b dst ty src = emit b (Mov { dst; ty; src })

let call b ?(want_result = true) callee args =
  if want_result then begin
    let dst = fresh_reg ~hint:"r" b in
    emit b (Call { dst = Some dst; callee; args });
    Some (Reg dst)
  end
  else begin
    emit b (Call { dst = None; callee; args });
    None
  end

let call_unit b callee args = ignore (call b ~want_result:false callee args)

let select b cond if_true if_false =
  let dst = fresh_reg ~hint:"s" b in
  emit b (Select { dst; cond; if_true; if_false });
  Reg dst

let inline_asm b s = emit b (Inline_asm s)

let intrinsic b ?(want_result = false) iname args =
  if want_result then begin
    let dst = fresh_reg ~hint:"q" b in
    emit b (Intrinsic { dst = Some dst; iname; args });
    Some (Reg dst)
  end
  else begin
    emit b (Intrinsic { dst = None; iname; args });
    None
  end

(* -- terminators -- *)

let ret b v = set_term b (Ret v)
let br b blk = set_term b (Br blk.b_label)

let cond_br b cond ~if_true ~if_false =
  set_term b (Cond_br { cond; if_true = if_true.b_label; if_false = if_false.b_label })

let switch b v cases ~default =
  set_term b
    (Switch
       {
         v;
         cases = List.map (fun (k, blk) -> (k, blk.b_label)) cases;
         default = default.b_label;
       })

(** Structured counted loop: emits
    [for i = init; i <cond> limit; i += step { body i }] and leaves the
    builder positioned in the exit block. [body] receives the induction
    register as a value. *)
let for_loop b ?(cond = Slt) ~init ~limit ~step body =
  let i = fresh_reg ~hint:"i" b in
  emit b (Mov { dst = i; ty = I64; src = init });
  let head = new_block b ~hint:"loop_head" () in
  let bodyb = new_block b ~hint:"loop_body" () in
  let exit = new_block b ~hint:"loop_exit" () in
  br b head;
  position_at b head;
  let c = icmp b cond I64 (Reg i) limit in
  cond_br b c ~if_true:bodyb ~if_false:exit;
  position_at b bodyb;
  body (Reg i);
  let i' = add b I64 (Reg i) step in
  emit b (Mov { dst = i; ty = I64; src = i' });
  br b head;
  position_at b exit

(** if/else with both branches joining into a fresh block, where the
    builder ends up positioned. *)
let if_then_else b cond ~then_ ~else_ =
  let tb = new_block b ~hint:"then" () in
  let eb = new_block b ~hint:"else" () in
  let join = new_block b ~hint:"join" () in
  cond_br b cond ~if_true:tb ~if_false:eb;
  position_at b tb;
  then_ ();
  br b join;
  position_at b eb;
  else_ ();
  br b join;
  position_at b join

let if_then b cond ~then_ =
  if_then_else b cond ~then_ ~else_:(fun () -> ())
