(** Parser for the canonical textual form emitted by {!Printer}.

    The format is line-oriented; a small hand-written lexer tokenizes each
    line. [parse_string] raises [Parse_error (line, msg)] on malformed
    input. Round-trip with the printer is property-tested. *)

open Types

exception Parse_error of int * string

type token =
  | Ident of string
  | Regtok of string
  | Symtok of string
  | Int of int
  | Str of string
  | Punct of char

let lex_line lineno s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let fail msg = raise (Parse_error (lineno, msg)) in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_' || c = '.'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = ';' then i := n (* comment to end of line *)
    else if c = '%' then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char s.[!j] do incr j done;
      toks := Regtok (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else if c = '@' then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char s.[!j] do incr j done;
      toks := Symtok (String.sub s (!i + 1) (!j - !i - 1)) :: !toks;
      i := !j
    end
    else if c = '"' then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] <> '"' do incr j done;
      if !j >= n then fail "unterminated string";
      toks := Str (Printer.unescape (String.sub s (!i + 1) (!j - !i - 1))) :: !toks;
      i := !j + 1
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      let text = String.sub s !i (!j - !i) in
      (match int_of_string_opt text with
      | Some v -> toks := Int v :: !toks
      | None -> fail ("bad integer: " ^ text));
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref (!i + 1) in
      while !j < n && is_ident_char s.[!j] do incr j done;
      toks := Ident (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else
      match c with
      | '=' | '(' | ')' | ',' | ':' | '[' | ']' | '{' | '}' | '/' ->
        toks := Punct c :: !toks;
        incr i
      | _ -> fail (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)

type cursor = { mutable toks : token list; line : int }

let fail cur msg = raise (Parse_error (cur.line, msg))

let next cur =
  match cur.toks with
  | [] -> fail cur "unexpected end of line"
  | t :: rest ->
    cur.toks <- rest;
    t

let peek cur = match cur.toks with [] -> None | t :: _ -> Some t

let expect_punct cur c =
  match next cur with
  | Punct c' when c' = c -> ()
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let expect_ident cur s =
  match next cur with
  | Ident s' when s' = s -> ()
  | _ -> fail cur ("expected keyword " ^ s)

let parse_ty cur =
  match next cur with
  | Ident "i8" -> I8
  | Ident "i16" -> I16
  | Ident "i32" -> I32
  | Ident "i64" -> I64
  | Ident "ptr" -> Ptr
  | _ -> fail cur "expected type"

let parse_value cur =
  match next cur with
  | Regtok r -> Reg r
  | Int n -> Imm n
  | Symtok s -> Sym s
  | _ -> fail cur "expected value"

let binop_of_string = function
  | "add" -> Some Add | "sub" -> Some Sub | "mul" -> Some Mul
  | "sdiv" -> Some Sdiv | "srem" -> Some Srem | "and" -> Some And
  | "or" -> Some Or | "xor" -> Some Xor | "shl" -> Some Shl
  | "lshr" -> Some Lshr | "ashr" -> Some Ashr
  | _ -> None

let cond_of_string = function
  | "eq" -> Some Eq | "ne" -> Some Ne | "slt" -> Some Slt
  | "sle" -> Some Sle | "sgt" -> Some Sgt | "sge" -> Some Sge
  | "ult" -> Some Ult | "ule" -> Some Ule | "ugt" -> Some Ugt
  | "uge" -> Some Uge
  | _ -> None

let parse_args cur =
  expect_punct cur '(';
  let rec go acc =
    match peek cur with
    | Some (Punct ')') ->
      ignore (next cur);
      List.rev acc
    | _ ->
      let v = parse_value cur in
      (match peek cur with
      | Some (Punct ',') -> ignore (next cur)
      | _ -> ());
      go (v :: acc)
  in
  go []

(** Parse one instruction or terminator line. *)
let parse_instr_line cur : [ `Instr of instr | `Term of terminator ] =
  match next cur with
  | Ident "ret" -> (
    match peek cur with
    | None -> `Term (Ret None)
    | Some _ -> `Term (Ret (Some (parse_value cur))))
  | Ident "br" -> (
    match next cur with
    | Ident l -> `Term (Br l)
    | _ -> fail cur "expected label")
  | Ident "brc" ->
    let cond = parse_value cur in
    expect_punct cur ',';
    let t = match next cur with Ident l -> l | _ -> fail cur "label" in
    expect_punct cur ',';
    let f = match next cur with Ident l -> l | _ -> fail cur "label" in
    `Term (Cond_br { cond; if_true = t; if_false = f })
  | Ident "switch" ->
    let v = parse_value cur in
    expect_punct cur '[';
    let rec cases acc =
      match peek cur with
      | Some (Punct ']') ->
        ignore (next cur);
        List.rev acc
      | _ ->
        let k = match next cur with Int k -> k | _ -> fail cur "case int" in
        expect_punct cur ':';
        let l = match next cur with Ident l -> l | _ -> fail cur "label" in
        (match peek cur with
        | Some (Punct ',') -> ignore (next cur)
        | _ -> ());
        cases ((k, l) :: acc)
    in
    let cs = cases [] in
    expect_ident cur "default";
    let d = match next cur with Ident l -> l | _ -> fail cur "label" in
    `Term (Switch { v; cases = cs; default = d })
  | Ident "unreachable" -> `Term Unreachable
  | Ident "store" ->
    let ty = parse_ty cur in
    let v = parse_value cur in
    expect_punct cur ',';
    let addr = parse_value cur in
    `Instr (Store { ty; v; addr })
  | Ident "call" -> (
    match next cur with
    | Symtok callee ->
      let args = parse_args cur in
      `Instr (Call { dst = None; callee; args })
    | _ -> fail cur "expected function symbol")
  | Ident "callind" ->
    let fn = parse_value cur in
    let args = parse_args cur in
    `Instr (Callind { dst = None; fn; args })
  | Ident "asm" -> (
    match next cur with
    | Str s -> `Instr (Inline_asm s)
    | _ -> fail cur "expected string")
  | Ident "intrinsic" -> (
    match next cur with
    | Ident iname ->
      let args = parse_args cur in
      `Instr (Intrinsic { dst = None; iname; args })
    | _ -> fail cur "expected intrinsic name")
  | Regtok dst -> (
    expect_punct cur '=';
    match next cur with
    | Ident "icmp" ->
      let cond =
        match next cur with
        | Ident c -> (
          match cond_of_string c with
          | Some c -> c
          | None -> fail cur ("bad condition " ^ c))
        | _ -> fail cur "condition"
      in
      let ty = parse_ty cur in
      let a = parse_value cur in
      expect_punct cur ',';
      let b = parse_value cur in
      `Instr (Icmp { dst; cond; ty; a; b })
    | Ident "load" ->
      let ty = parse_ty cur in
      expect_punct cur ',';
      let addr = parse_value cur in
      `Instr (Load { dst; ty; addr })
    | Ident "alloca" -> (
      match next cur with
      | Int size -> `Instr (Alloca { dst; size })
      | _ -> fail cur "alloca size")
    | Ident "gep" ->
      let base = parse_value cur in
      expect_punct cur ',';
      let idx = parse_value cur in
      expect_punct cur ',';
      let scale =
        match next cur with Int s -> s | _ -> fail cur "gep scale"
      in
      `Instr (Gep { dst; base; idx; scale })
    | Ident "mov" ->
      let ty = parse_ty cur in
      let src = parse_value cur in
      `Instr (Mov { dst; ty; src })
    | Ident "call" -> (
      match next cur with
      | Symtok callee ->
        let args = parse_args cur in
        `Instr (Call { dst = Some dst; callee; args })
      | _ -> fail cur "function symbol")
    | Ident "callind" ->
      let fn = parse_value cur in
      let args = parse_args cur in
      `Instr (Callind { dst = Some dst; fn; args })
    | Ident "intrinsic" -> (
      match next cur with
      | Ident iname ->
        let args = parse_args cur in
        `Instr (Intrinsic { dst = Some dst; iname; args })
      | _ -> fail cur "expected intrinsic name")
    | Ident "select" ->
      let cond = parse_value cur in
      expect_punct cur ',';
      let if_true = parse_value cur in
      expect_punct cur ',';
      let if_false = parse_value cur in
      `Instr (Select { dst; cond; if_true; if_false })
    | Ident op -> (
      match binop_of_string op with
      | Some op ->
        let ty = parse_ty cur in
        let a = parse_value cur in
        expect_punct cur ',';
        let b = parse_value cur in
        `Instr (Binop { dst; op; ty; a; b })
      | None -> fail cur ("unknown opcode " ^ op))
    | _ -> fail cur "expected opcode")
  | _ -> fail cur "expected instruction"

(* ------------------------------------------------------------------ *)

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let m =
    { m_name = ""; globals = []; funcs = []; externs = []; meta = [] }
  in
  let named = ref false in
  let cur_func : func option ref = ref None in
  let cur_block : block option ref = ref None in
  let finish_func () =
    cur_func := None;
    cur_block := None
  in
  let lineno = ref 0 in
  List.iter
    (fun raw ->
      incr lineno;
      let toks = lex_line !lineno raw in
      if toks <> [] then begin
        let cur = { toks; line = !lineno } in
        match (!cur_func, peek cur) with
        | None, Some (Ident "module") ->
          ignore (next cur);
          (match next cur with
          | Str s ->
            if !named then fail cur "duplicate module line";
            named := true;
            (* m_name is immutable; rebuild below via functional update *)
            ignore s
          | _ -> fail cur "module name string");
          (* store name via meta slot, patched at the end *)
          (match lex_line !lineno raw with
          | [ Ident _; Str s ] -> m.meta <- ("__name", s) :: m.meta
          | _ -> ())
        | None, Some (Ident "meta") ->
          ignore (next cur);
          let k = match next cur with Str k -> k | _ -> fail cur "key" in
          expect_punct cur '=';
          let v = match next cur with Str v -> v | _ -> fail cur "value" in
          m.meta <- m.meta @ [ (k, v) ]
        | None, Some (Ident "extern") ->
          ignore (next cur);
          let name =
            match next cur with Symtok s -> s | _ -> fail cur "symbol"
          in
          expect_punct cur '/';
          let arity =
            match next cur with Int n -> n | _ -> fail cur "arity"
          in
          m.externs <- m.externs @ [ (name, arity) ]
        | None, Some (Ident "global") ->
          ignore (next cur);
          let name =
            match next cur with Symtok s -> s | _ -> fail cur "symbol"
          in
          let writable =
            match next cur with
            | Ident "rw" -> true
            | Ident "ro" -> false
            | _ -> fail cur "rw/ro"
          in
          let size =
            match next cur with Int n -> n | _ -> fail cur "size"
          in
          let init =
            match peek cur with
            | Some (Str s) -> Some s
            | _ -> None
          in
          m.globals <-
            m.globals
            @ [ { g_name = name; g_size = size; g_init = init; g_writable = writable } ]
        | None, Some (Ident "func") ->
          ignore (next cur);
          let name =
            match next cur with Symtok s -> s | _ -> fail cur "symbol"
          in
          expect_punct cur '(';
          let rec params acc =
            match peek cur with
            | Some (Punct ')') ->
              ignore (next cur);
              List.rev acc
            | _ ->
              let r =
                match next cur with Regtok r -> r | _ -> fail cur "param reg"
              in
              expect_punct cur ':';
              let ty = parse_ty cur in
              (match peek cur with
              | Some (Punct ',') -> ignore (next cur)
              | _ -> ());
              params ((r, ty) :: acc)
          in
          let ps = params [] in
          expect_punct cur ':';
          let ret =
            match next cur with
            | Ident "void" -> None
            | Ident "i8" -> Some I8
            | Ident "i16" -> Some I16
            | Ident "i32" -> Some I32
            | Ident "i64" -> Some I64
            | Ident "ptr" -> Some Ptr
            | _ -> fail cur "return type"
          in
          expect_punct cur '{';
          let f = { f_name = name; params = ps; ret_ty = ret; blocks = [] } in
          m.funcs <- m.funcs @ [ f ];
          cur_func := Some f
        | None, _ -> fail cur "expected top-level declaration"
        | Some f, tok -> (
          match tok with
          | Some (Punct '}') -> finish_func ()
          | Some (Ident l) when List.tl cur.toks = [ Punct ':' ] ->
            let blk = { b_label = l; body = []; term = Unreachable } in
            f.blocks <- f.blocks @ [ blk ];
            cur_block := Some blk
          | _ -> (
            let blk =
              match !cur_block with
              | Some b -> b
              | None -> fail cur "instruction outside block"
            in
            match parse_instr_line cur with
            | `Instr i -> blk.body <- blk.body @ [ i ]
            | `Term t -> blk.term <- t))
      end)
    lines;
  if !cur_func <> None then
    raise (Parse_error (!lineno, "unterminated function"));
  let name =
    match List.assoc_opt "__name" m.meta with Some s -> s | None -> ""
  in
  {
    m with
    m_name = name;
    meta = List.filter (fun (k, _) -> k <> "__name") m.meta;
  }

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_string text
