lib/vm/interp.ml: Arith Array Hashtbl Kernel Kir List Machine Printf
