lib/vm/arith.ml: Kir
