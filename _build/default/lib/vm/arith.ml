(** Width-aware integer semantics for the interpreter. KIR values live in
    OCaml's native 63-bit ints; operations are evaluated at the
    instruction's declared width with two's-complement wrap-around, then
    stored zero-extended (like machine registers holding narrow values). *)

open Kir.Types

let mask_of = function
  | I8 -> 0xFF
  | I16 -> 0xFFFF
  | I32 -> 0xFFFFFFFF
  | I64 | Ptr -> -1 (* all bits: native representation is kept as-is *)

let truncate ty v =
  match ty with I64 | Ptr -> v | _ -> v land mask_of ty

(** Interpret a zero-extended stored value as signed at width [ty]. *)
let to_signed ty v =
  match ty with
  | I8 -> if v land 0x80 <> 0 then v - 0x100 else v land 0xFF
  | I16 -> if v land 0x8000 <> 0 then v - 0x10000 else v land 0xFFFF
  | I32 ->
    if v land 0x80000000 <> 0 then (v land 0xFFFFFFFF) - 0x100000000
    else v land 0xFFFFFFFF
  | I64 | Ptr -> v (* 63-bit native; already signed *)

exception Division_by_zero

let binop ty op a b =
  let wrap v = truncate ty v in
  match op with
  | Add -> wrap (a + b)
  | Sub -> wrap (a - b)
  | Mul -> wrap (a * b)
  | Sdiv ->
    if b = 0 then raise Division_by_zero
    else wrap (to_signed ty a / to_signed ty b)
  | Srem ->
    if b = 0 then raise Division_by_zero
    else wrap (to_signed ty a mod to_signed ty b)
  | And -> wrap (a land b)
  | Or -> wrap (a lor b)
  | Xor -> wrap (a lxor b)
  | Shl -> if b >= 64 then 0 else wrap (a lsl (b land 63))
  | Lshr -> if b >= 64 then 0 else wrap (truncate ty a lsr (b land 63))
  | Ashr ->
    if b >= 64 then if to_signed ty a < 0 then mask_of ty else 0
    else wrap (to_signed ty a asr (b land 63))

let compare_values ty cond a b =
  let sa = to_signed ty a and sb = to_signed ty b in
  let ua = truncate ty a and ub = truncate ty b in
  match cond with
  | Eq -> ua = ub
  | Ne -> ua <> ub
  | Slt -> sa < sb
  | Sle -> sa <= sb
  | Sgt -> sa > sb
  | Sge -> sa >= sb
  | Ult -> ua < ub
  | Ule -> ua <= ub
  | Ugt -> ua > ub
  | Uge -> ua >= ub
