lib/core/experiments.ml: Array Kernel Kir List Machine Net Nic Passes Policy Stats String Testbed
