lib/core/carat_kop.ml: Experiments Kernel Kernsvc Kir Machine Net Nic Passes Policy Stats Testbed Vm
