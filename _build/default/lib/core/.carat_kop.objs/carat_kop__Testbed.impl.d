lib/core/testbed.ml: Kernel Kir Machine Net Nic Passes Policy Vm
