(** The paper's two testbed machines (§4.2).

    - Dell R415: dual 2.2 GHz AMD Opteron 4122 (4 cores each, 256 KB
      L1i/L1d, 2 MB L2, 6 MB L3). An older, narrow core: 2-wide retire,
      modest branch predictor, higher memory latencies. The paper measures
      a <0.8% median throughput effect here.

    - Dell R350: 2.8 GHz Intel Xeon E-2378G (8 cores / 16 threads, 256 KB
      L1i/L1d, 2 MB L2, 16 MB L3). A modern wide core: 4-wide retire,
      large gshare-style predictor, aggressive speculation. The paper
      measures an almost unmeasurable (<0.1%) effect here and attributes
      it to "improved caching, branch prediction, and speculation" — which
      is exactly what these parameters encode. *)

let r415 : Model.params =
  {
    name = "r415";
    description = "Dell R415, 2x AMD Opteron 4122 @ 2.2 GHz";
    freq_ghz = 2.2;
    issue_width = 2;
    line_size = 64;
    l1_size = 64 * 1024;
    l1_assoc = 2;
    l1_latency = 3;
    l2_size = 512 * 1024;
    l2_assoc = 8;
    l2_latency = 14;
    l3_size = 6 * 1024 * 1024;
    l3_assoc = 16;
    l3_latency = 45;
    mem_latency = 230;
    predictor_entries_log2 = 10;
    predictor_history_bits = 8;
    mispredict_penalty = 13;
    call_overhead = 3;
    syscall_overhead = 420;
    mmio_latency = 260;
    mmio_write_latency = 75;
    speculative_overlap = 0.50;
  }

let r350 : Model.params =
  {
    name = "r350";
    description = "Dell R350, Intel Xeon E-2378G @ 2.8 GHz";
    freq_ghz = 2.8;
    issue_width = 4;
    line_size = 64;
    l1_size = 48 * 1024;
    l1_assoc = 12;
    l1_latency = 1;
    l2_size = 2 * 1024 * 1024;
    l2_assoc = 16;
    l2_latency = 12;
    l3_size = 16 * 1024 * 1024;
    l3_assoc = 16;
    l3_latency = 38;
    mem_latency = 190;
    predictor_entries_log2 = 14;
    predictor_history_bits = 16;
    mispredict_penalty = 16;
    call_overhead = 2;
    syscall_overhead = 500;
    mmio_latency = 220;
    mmio_write_latency = 60;
    speculative_overlap = 0.20;
  }

let by_name = function
  | "r415" -> Some r415
  | "r350" -> Some r350
  | _ -> None

let all = [ r415; r350 ]
