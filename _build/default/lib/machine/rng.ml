(** Deterministic splitmix-style PRNG.

    Every stochastic component in the simulation (cache perturbation,
    interrupt jitter, descheduling) draws from an explicitly seeded
    generator so that experiments are exactly reproducible; trials differ
    only in their seed. Works on OCaml's 63-bit native ints. *)

type t = { mutable state : int }

let create seed = { state = (seed lxor 0x35eb9d6a4c9e21d1) land max_int }

let golden = 0x1e3779b97f4a7c15 land max_int

(** Next raw 62-bit value. *)
let next t =
  t.state <- (t.state + golden) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14602d6bc4b5533 land max_int in
  (z lxor (z lsr 31)) land max_int

(** Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next t mod bound

(** Uniform float in [0, 1). *)
let float t = float_of_int (next t land 0xFFFFFFFFFFFF) /. 281474976710656.0

(** Bernoulli draw with probability [p]. *)
let flip t p = float t < p

(** Geometric-ish jitter: mean [mean], clipped at [max]. Used for
    interrupt arrival noise. *)
let jitter t ~mean ~max:max_v =
  let u = float t in
  let v = int_of_float (-.(float_of_int mean) *. log (1.0 -. u +. 1e-12)) in
  if v > max_v then max_v else if v < 0 then 0 else v

(** Derive an independent stream: same sequence every time for the same
    (parent seed, tag). *)
let split t ~tag = create ((next t lxor (tag * 0x9e3779b9)) land max_int)
