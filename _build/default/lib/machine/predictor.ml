(** Gshare branch predictor: a table of 2-bit saturating counters indexed
    by (branch PC hash) xor (global history). The key behaviour for the
    paper's result: the branches inside [carat_guard] "generally go the
    same way", so after warm-up they predict perfectly and the guard costs
    almost nothing on a wide machine. *)

type t = {
  mask : int;
  counters : Bytes.t;      (** 2-bit counters, one byte each *)
  history_bits : int;
  mutable history : int;
  mutable predicted : int;
  mutable mispredicted : int;
}

let create ~entries_log2 ~history_bits =
  let n = 1 lsl entries_log2 in
  {
    mask = n - 1;
    counters = Bytes.make n '\001';  (* weakly not-taken *)
    history_bits;
    history = 0;
    predicted = 0;
    mispredicted = 0;
  }

let index t pc =
  (* pc is an arbitrary identifier for the branch site; mix then fold *)
  let h = pc * 0x9e3779b9 in
  ((h lsr 7) lxor h lxor t.history) land t.mask

(** Record an executed branch outcome; true = predicted correctly. *)
let branch t ~pc ~taken =
  let i = index t pc in
  let c = Char.code (Bytes.get t.counters i) in
  let prediction = c >= 2 in
  let correct = prediction = taken in
  if correct then t.predicted <- t.predicted + 1
  else t.mispredicted <- t.mispredicted + 1;
  let c' = if taken then min 3 (c + 1) else max 0 (c - 1) in
  Bytes.set t.counters i (Char.chr c');
  t.history <-
    ((t.history lsl 1) lor (if taken then 1 else 0))
    land ((1 lsl t.history_bits) - 1);
  correct

let accuracy t =
  let total = t.predicted + t.mispredicted in
  if total = 0 then 1.0 else float_of_int t.predicted /. float_of_int total

let reset_stats t =
  t.predicted <- 0;
  t.mispredicted <- 0

let clear t =
  Bytes.fill t.counters 0 (Bytes.length t.counters) '\001';
  t.history <- 0;
  reset_stats t
