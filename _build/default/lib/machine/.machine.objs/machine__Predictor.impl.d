lib/machine/predictor.ml: Bytes Char
