lib/machine/presets.ml: Model
