lib/machine/rng.ml:
