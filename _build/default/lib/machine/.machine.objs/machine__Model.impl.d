lib/machine/model.ml: Cache Predictor
