lib/stats/cdf.ml: Array Buffer Bytes Float List Printf
