lib/stats/hist.ml: Array Buffer List Printf String
