lib/stats/summary.ml: Array Printf
