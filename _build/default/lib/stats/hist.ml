(** Fixed-width histograms with ASCII rendering (the paper's Figure 7 is
    a latency histogram with outliers hidden). *)

type t = {
  lo : float;
  hi : float;
  bins : int array;
  mutable below : int;
  mutable above : int;  (** outliers outside [lo, hi) *)
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Hist.create: hi must exceed lo";
  if bins <= 0 then invalid_arg "Hist.create: need at least one bin";
  { lo; hi; bins = Array.make bins 0; below = 0; above = 0 }

let add t x =
  if x < t.lo then t.below <- t.below + 1
  else if x >= t.hi then t.above <- t.above + 1
  else begin
    let n = Array.length t.bins in
    let i =
      int_of_float (float_of_int n *. (x -. t.lo) /. (t.hi -. t.lo))
    in
    let i = if i >= n then n - 1 else i in
    t.bins.(i) <- t.bins.(i) + 1
  end

let of_samples ~lo ~hi ~bins xs =
  let t = create ~lo ~hi ~bins in
  Array.iter (fun x -> add t x) xs;
  t

let total t = Array.fold_left ( + ) (t.below + t.above) t.bins
let outliers t = t.below + t.above
let counts t = Array.copy t.bins

let bin_bounds t i =
  let n = Array.length t.bins in
  let w = (t.hi -. t.lo) /. float_of_int n in
  (t.lo +. (float_of_int i *. w), t.lo +. (float_of_int (i + 1) *. w))

(** Render several histograms over the same binning side by side. *)
let render ~title ~unit_label (series : (string * t) list) : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  match series with
  | [] -> Buffer.contents buf
  | (_, first) :: _ ->
    let nbins = Array.length first.bins in
    let peak =
      List.fold_left
        (fun acc (_, t) -> Array.fold_left max acc t.bins)
        1 series
    in
    let width = 30 in
    for i = 0 to nbins - 1 do
      let lo, _ = bin_bounds first i in
      Buffer.add_string buf (Printf.sprintf "%10.0f %s |" lo unit_label);
      List.iter
        (fun (_, t) ->
          let c = t.bins.(i) in
          let bar = c * width / peak in
          Buffer.add_string buf
            (Printf.sprintf "%-*s %6d |" width (String.make bar '#') c))
        series;
      Buffer.add_char buf '\n'
    done;
    List.iter
      (fun (name, t) ->
        Buffer.add_string buf
          (Printf.sprintf "      %s: %d samples, %d outliers hidden\n" name
             (total t) (outliers t)))
      series;
    Buffer.contents buf
