(* Policy as a firewall (§3.1): the operator configures the region table
   through the ioctl interface on /dev/carat — from "user space", exactly
   as the paper's policy-manager application does — and the rules behave
   like firewall rules: first match wins, default deny.

   Demonstrated policies:
   - block the direct-mapped physical memory with a single rule
   - make a heap object read-only for the module
   - open a narrow window inside an otherwise-denied range

   Run with: dune exec examples/firewall_policy.exe *)

open Carat_kop

(* A tiny module with one read entry point and one write entry point. *)
let make_probe_module () =
  let b = Kir.Builder.create "probe_mod" in
  ignore
    (Kir.Builder.start_func b "probe_read"
       ~params:[ ("%addr", Kir.Types.I64) ]
       ~ret:(Some Kir.Types.I64));
  let v = Kir.Builder.load b Kir.Types.I64 (Kir.Types.Reg "%addr") in
  Kir.Builder.ret b (Some v);
  ignore
    (Kir.Builder.start_func b "probe_write"
       ~params:[ ("%addr", Kir.Types.I64); ("%v", Kir.Types.I64) ]
       ~ret:(Some Kir.Types.I64));
  Kir.Builder.store b Kir.Types.I64 (Kir.Types.Reg "%v") (Kir.Types.Reg "%addr");
  Kir.Builder.ret b (Some (Kir.Types.Imm 0));
  let m = Kir.Builder.modul b in
  ignore (Passes.Pipeline.compile m);
  m

(* user-space helper: marshal a region into the ioctl argument block and
   call the ioctl, like policy-manager does *)
let ioctl_add_region kernel ~arg_buf ~base ~len ~prot =
  Kernel.write kernel ~addr:arg_buf ~size:8 base;
  Kernel.write kernel ~addr:(arg_buf + 8) ~size:8 len;
  Kernel.write kernel ~addr:(arg_buf + 16) ~size:8 prot;
  Kernel.ioctl kernel ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_add
    ~arg:arg_buf

let expect label outcome f =
  let result =
    try
      ignore (f ());
      `Allowed
    with Kernel.Panic _ -> `Denied
  in
  let shown = match result with `Allowed -> "allowed" | `Denied -> "DENIED" in
  let ok = result = outcome in
  Printf.printf "  %-52s %s %s\n" label shown (if ok then "[as expected]" else "[UNEXPECTED]");
  if not ok then exit 1

let fresh_setup () =
  let kernel = Kernel.create Machine.Presets.r350 in
  ignore (Vm.Interp.install kernel);
  (* Audit mode would be friendlier for a demo, but the paper's behaviour is
     a panic; we build a fresh kernel per scenario instead. *)
  let pm = Policy.Policy_module.install kernel in
  let m = make_probe_module () in
  (match Kernel.insmod kernel m with
  | Ok _ -> ()
  | Error e -> failwith (Kernel.load_error_to_string e));
  let arg_buf = Kernel.map_user kernel ~size:64 in
  (kernel, pm, arg_buf)

let () =
  print_endline "CARAT KOP policies as firewall rules (ioctl /dev/carat)";

  (* scenario 1: block the direct map with a single rule *)
  print_endline "\n1. deny the direct-mapped physical memory, allow the rest";
  let kernel, _, arg = fresh_setup () in
  let heap = Kernel.kmalloc kernel ~size:64 in
  (* rule 1: the direct map, no permissions; rule 2: everything else in
     the kernel half, rw *)
  assert (
    ioctl_add_region kernel ~arg_buf:arg ~base:Kernel.Layout.direct_map_base
      ~len:0x1000_0000_0000 ~prot:0
    = 0);
  assert (
    ioctl_add_region kernel ~arg_buf:arg ~base:Kernel.Layout.kernel_base
      ~len:0x2FFF_FFFF_FFFF_FFFF ~prot:Policy.Region.prot_rw
    = 0);
  expect "module reads module-area global" `Allowed (fun () ->
      (* the module's own code pages: synthesise via an allowed address *)
      Kernel.call_symbol kernel "probe_read"
        [| Kernel.Layout.kernel_text_base + 64 |]);
  expect "module reads direct-mapped heap (kmalloc'd)" `Denied (fun () ->
      Kernel.call_symbol kernel "probe_read" [| heap |]);

  (* scenario 2: read-only heap object *)
  print_endline "\n2. a heap object the module may read but not write";
  let kernel, _, arg = fresh_setup () in
  let obj = Kernel.kmalloc kernel ~size:256 in
  Kernel.write kernel ~addr:obj ~size:8 0xC0FFEE;
  assert (
    ioctl_add_region kernel ~arg_buf:arg ~base:obj ~len:256
      ~prot:Policy.Region.prot_read
    = 0);
  expect "read of the read-only object" `Allowed (fun () ->
      Kernel.call_symbol kernel "probe_read" [| obj |]);
  expect "write to the read-only object" `Denied (fun () ->
      Kernel.call_symbol kernel "probe_write" [| obj; 0xBAD |]);

  (* scenario 3: narrow allow window, first-match-wins ordering *)
  print_endline "\n3. a 64-byte window opened inside a denied range";
  let kernel, pm, _ = fresh_setup () in
  let buf = Kernel.kmalloc kernel ~size:4096 in
  Policy.Policy_module.set_policy pm
    [
      Policy.Region.v ~tag:"window" ~base:(buf + 1024) ~len:64
        ~prot:Policy.Region.prot_rw ();
      Policy.Region.v ~tag:"fence" ~base:buf ~len:4096 ~prot:0 ();
    ];
  expect "access inside the window" `Allowed (fun () ->
      Kernel.call_symbol kernel "probe_read" [| buf + 1040 |]);
  expect "access outside the window (same page)" `Denied (fun () ->
      Kernel.call_symbol kernel "probe_read" [| buf + 8 |]);

  print_endline "\nregion count via ioctl:";
  let kernel, _, arg = fresh_setup () in
  for i = 0 to 9 do
    assert (
      ioctl_add_region kernel ~arg_buf:arg ~base:(0x2000_0000 + (i * 0x1000))
        ~len:0x100 ~prot:Policy.Region.prot_read
      = 0)
  done;
  Printf.printf "  after 10 adds: count=%d\n"
    (Kernel.ioctl kernel ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_count
       ~arg:0);
  print_endline "\nfirewall_policy done."
