(* Fault campaign walkthrough: what each enforcement mode does when a
   module misbehaves, told through single injected faults, then the full
   seeded campaign matrix.

   Run with: dune exec examples/fault_campaign.exe *)

open Carat_kop

let show (o : Fault.Harness.outcome) =
  Printf.printf "  %-18s under %-16s : "
    (Fault.Inject.cls_to_string o.Fault.Harness.cls)
    (Fault.Harness.mode_to_string o.Fault.Harness.mode);
  if not o.Fault.Harness.loaded then
    Printf.printf "rejected at insmod (%s)"
      (Option.value ~default:"?" o.Fault.Harness.load_error)
  else begin
    (match o.Fault.Harness.rc with
    | Some rc -> Printf.printf "ran, rc=%d" rc
    | None -> Printf.printf "ran");
    if o.Fault.Harness.panicked then Printf.printf ", kernel PANICKED";
    if o.Fault.Harness.quarantined then Printf.printf ", module QUARANTINED"
  end;
  Printf.printf " — %d byte(s) escaped%s\n" o.Fault.Harness.escaped_bytes
    (if Fault.Harness.contained o then " (contained)" else " (ESCAPED)")

let () =
  print_endline banner;

  (* 1. One wild-pointer store — a module scribbling on a core-kernel
     secret — under each of the four configurations. Baseline lets it
     land; audit logs it and lets it land; panic stops the machine at the
     first fault; quarantine stops the store AND keeps the kernel up. *)
  print_endline "\n-- one wild store, four configurations --";
  List.iter
    (fun mode ->
      show (Fault.Harness.run_one ~cls:Fault.Inject.Wild_store ~mode ~seed:7 ()))
    Fault.Harness.all_modes;

  (* 2. The quarantine story in detail: deny -> isolate -> reject ->
     recover. run_one already performs the re-entry probe and the
     rmmod + repaired-module recovery when the victim was quarantined. *)
  print_endline "\n-- quarantine: isolate, reject re-entry, recover --";
  let o =
    Fault.Harness.run_one ~cls:Fault.Inject.Wild_store
      ~mode:(Fault.Harness.Carat Policy.Policy_module.Quarantine) ~seed:7 ()
  in
  Printf.printf "  kernel alive after violation : %b\n"
    (not o.Fault.Harness.panicked);
  Printf.printf "  re-entry rejected with EIO   : %s\n"
    (match o.Fault.Harness.reenter_blocked with
    | Some b -> string_of_bool b
    | None -> "n/a");
  Printf.printf "  rmmod + repaired module runs : %s\n"
    (match o.Fault.Harness.recovered with
    | Some b -> string_of_bool b
    | None -> "n/a");

  (* 3. A pipeline fault: the module image is tampered with after
     signing. The verifying loader refuses it outright — the kernel never
     even has to catch the store. *)
  print_endline "\n-- post-signing tamper: caught at the loader --";
  List.iter
    (fun mode ->
      show (Fault.Harness.run_one ~cls:Fault.Inject.Ir_tamper ~mode ~seed:7 ()))
    [ Fault.Harness.Baseline;
      Fault.Harness.Carat Policy.Policy_module.Quarantine ];

  (* 4. The full campaign, scaled down. Same seed, same bytes, every
     time — rerun this example and diff the output. *)
  print_endline "\n-- seeded campaign (60 faults x 4 configurations) --\n";
  let report = Fault.Campaign.run { Fault.Campaign.faults = 60; seed = 42 } in
  print_string (Fault.Campaign.render report);
  exit (if Fault.Campaign.passes report then 0 else 1)
