(* kop-lint: static checks for CARAT KOP artifacts.

     kop_lint module FILE.kir     — KIR lints: unguarded accesses,
                                    unreachable blocks, dead/duplicate
                                    guards, indirect calls without a
                                    cfi_guard
     kop_lint policy FILE.kop     — policy-file lints: shadowed regions,
                                    capacity overflow, write-only
                                    protections, shadow-table blind spots
     kop_lint cert FILE.kir       — validate the embedded
                                    guard-completeness certificate of a
                                    compiled module (digest + re-proof)
     kop_lint san FILE.kir        — allocation-lifetime dataflow lints:
                                    double-free, use-after-free,
                                    leak-on-exit, unchecked kmalloc
     kop_lint race                — run the happens-before detector's
                                    fixture suite (clean suites silent,
                                    seeded races flagged)

   Exit codes are uniform across every subcommand: 0 clean (warnings
   allowed), 3 errors found, 1 bad input, 2 usage. Pass --strict to
   promote warnings to errors (exit 3) everywhere. *)

open Cmdliner
open Carat_kop

let with_kir path f =
  try f (Kir.Parser.parse_file path) with
  | Kir.Parser.Parse_error (line, msg) ->
    Printf.eprintf "kop_lint: %s: parse error at line %d: %s\n" path line msg;
    1

let verdict ~strict ~what path errs warns =
  Printf.printf "%s: %d error(s), %d warning(s) [%s]\n" path (List.length errs)
    (List.length warns) what;
  if errs <> [] || (strict && warns <> []) then 3 else 0

let cmd_module path strict =
  with_kir path (fun m ->
      match Kir.Verify.check_module m with
      | (_ :: _) as errs ->
        List.iter
          (fun e ->
            Printf.printf "error[L-verify] %s\n" (Kir.Verify.error_to_string e))
          errs;
        Printf.printf "%s: %d error(s), 0 warning(s) [kir-verify]\n" path
          (List.length errs);
        3
      | [] ->
        let findings = Analysis.Kir_lint.lint m in
        List.iter
          (fun f -> print_endline (Analysis.Kir_lint.finding_to_string f))
          findings;
        verdict ~strict ~what:"kir" path
          (Analysis.Kir_lint.errors findings)
          (Analysis.Kir_lint.warnings findings))

let cmd_policy path strict =
  try
    let t = Policy.Policy_file.load path in
    let findings = Policy.Policy_lint.lint t in
    List.iter
      (fun f -> print_endline (Policy.Policy_lint.finding_to_string f))
      findings;
    verdict ~strict ~what:"policy" path
      (Policy.Policy_lint.errors findings)
      (Policy.Policy_lint.warnings findings)
  with
  | Policy.Policy_file.Parse_error (line, msg) ->
    Printf.eprintf "kop_lint: %s: policy parse error at line %d: %s\n" path
      line msg;
    1
  | Sys_error msg ->
    Printf.eprintf "kop_lint: %s\n" msg;
    1

let cmd_cert path expect_domain strict =
  with_kir path (fun m ->
      match Analysis.Certify.validate ?expect_domain m with
      | Ok () ->
        Printf.printf "%s: certificate ok (guard completeness re-proved)\n"
          path;
        (* certificate validation emits no warnings; --strict is accepted
           for exit-code uniformity across subcommands *)
        ignore (strict : bool);
        0
      | Error e ->
        Printf.printf "%s: certificate REJECTED: %s\n" path
          (Analysis.Certify.validate_error_to_string e);
        3)

let cmd_san path strict =
  with_kir path (fun m ->
      let findings = Analysis.Alloc_lint.lint m in
      List.iter
        (fun f -> print_endline (Analysis.Kir_lint.finding_to_string f))
        findings;
      verdict ~strict ~what:"alloc" path
        (Analysis.Kir_lint.errors findings)
        (Analysis.Kir_lint.warnings findings))

let cmd_race strict =
  let vs = Race_suites.all () in
  print_string (Race_suites.render vs);
  (* suite failures are errors; there is no warning severity here, so
     --strict changes nothing (accepted for uniformity) *)
  ignore (strict : bool);
  if Race_suites.pass vs then 0 else 3

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")

let strict_arg =
  Arg.(value & flag & info [ "strict" ] ~doc:"Also fail (exit 3) on warnings.")

let module_cmd =
  Cmd.v
    (Cmd.info "module"
       ~doc:
         "lint a KIR module: unguarded loads/stores, unreachable blocks, \
          dead or duplicate guards, indirect calls without cfi_guard")
    Term.(const cmd_module $ file_arg $ strict_arg)

let policy_cmd =
  Cmd.v
    (Cmd.info "policy"
       ~doc:
         "lint a policy file: shadowed regions, capacity overflow, \
          write-only protections, shadow-table blind spots")
    Term.(const cmd_policy $ file_arg $ strict_arg)

let domain_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "domain" ] ~docv:"NAME"
        ~doc:
          "Require the certificate to be bound to policy domain $(docv); a \
           certificate for a different (or no) domain is rejected.")

let cert_cmd =
  Cmd.v
    (Cmd.info "cert"
       ~doc:
         "validate the guard-completeness certificate embedded in a \
          compiled module (body digest match, then full re-proof); with \
          --domain, also check the domain binding")
    Term.(const cmd_cert $ file_arg $ domain_arg $ strict_arg)

let san_cmd =
  Cmd.v
    (Cmd.info "san"
       ~doc:
         "allocation-lifetime dataflow lints over a KIR module: \
          double-free and use-after-free (errors), leak-on-exit and \
          kmalloc results dereferenced without a null check (warnings)")
    Term.(const cmd_san $ file_arg $ strict_arg)

let race_cmd =
  Cmd.v
    (Cmd.info "race"
       ~doc:
         "run the happens-before race-detector fixture suite: the clean \
          RCU/NAPI/rebuild workloads must stay silent and the seeded \
          stale-window and corruption fixtures must be flagged")
    Term.(const cmd_race $ strict_arg)

let () =
  let doc = "static analysis suite for CARAT KOP modules and policies" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "kop_lint" ~doc)
          [ module_cmd; policy_cmd; cert_cmd; san_cmd; race_cmd ]))
