(* kop-run: boot a simulated kernel, install the policy module with a
   policy file, insert a (signed) KIR module, and call an entry point —
   the insmod-and-poke loop of kernel-module development, on the bench.

     kop_run module.kir --policy policy.kop --call sum_region \
             --args 0x1100000000000000,64 [--machine r350] [--opt LEVEL]
             [--mode panic|quarantine|audit] [--no-enforce] [--log] [--stats]

   --opt re-optimizes the (already guarded) module at insertion time —
   the guard tier is a loader decision, not only a vendor one; the
   module is re-certified and re-signed before insmod.

   Exit codes: 0 success, 4 kernel panic (e.g. guard violation),
   6 module quarantined (kernel still alive), 1 other errors. *)

open Cmdliner
open Carat_kop

(* --duplex: no module file — bring up the full-duplex testbed (RSS-steered
   NAPI receive plus pktgen transmit on every CPU) against a
   driver-generated module and report throughput and tail latency, the
   pktgen+netperf smoke run of real NIC bring-up. *)
let run_duplex ~machine ~cpus ~no_enforce ~stats =
  let config =
    {
      Smp_testbed.default_config with
      machine;
      cpus;
      rx_queues = cpus;
      technique = (if no_enforce then Testbed.Baseline else Testbed.Carat);
      seed = 7;
    }
  in
  let tb = Smp_testbed.create ~config () in
  let r = Smp_testbed.run_traffic ~count:200 tb in
  let cdf = Stats.Cdf.of_samples r.Smp_testbed.d_latencies in
  Printf.printf "full-duplex %s, %d CPU(s), %d RSS RX queue(s)\n"
    (Testbed.technique_to_string config.Smp_testbed.technique)
    cpus cpus;
  Array.iter
    (fun c ->
      Printf.printf "  cpu%d: tx %4d (%9.0f pps)  rx %4d (%9.0f pps)\n"
        c.Smp_testbed.dc_cpu c.Smp_testbed.dc_sent c.Smp_testbed.dc_tx_pps
        c.Smp_testbed.dc_rx_frames c.Smp_testbed.dc_rx_pps)
    r.Smp_testbed.d_per_cpu;
  Printf.printf "  total: tx %.0f pps  rx %.0f pps (%d frames, %d dropped)\n"
    r.Smp_testbed.d_tx_pps r.Smp_testbed.d_rx_pps r.Smp_testbed.d_rx_frames
    r.Smp_testbed.d_rx_dropped;
  Printf.printf "  latency: p50 %.0f  p99 %.0f  p999 %.0f cycles\n"
    (Stats.Cdf.quantile cdf 0.5)
    (Stats.Cdf.quantile cdf 0.99)
    (Stats.Cdf.quantile cdf 0.999);
  if stats then
    Printf.printf
      "  napi: %d irqs, %d polls, %d budget-exhausted, %d timer kicks\n"
      r.Smp_testbed.d_rx_irqs r.Smp_testbed.d_rx_polls
      r.Smp_testbed.d_budget_exhausted r.Smp_testbed.d_timer_kicks;
  if r.Smp_testbed.d_stale_allows <> 0 then begin
    Printf.eprintf "kop_run: %d stale allows during the duplex run\n"
      r.Smp_testbed.d_stale_allows;
    1
  end
  else 0

let run module_path policy_path call args machine_name engine_name opt_str
    mode_str no_enforce show_log stats trace guard_trace cpus duplex sanitize =
  if cpus < 1 || cpus > 8 then begin
    Printf.eprintf "kop_run: --cpus expects 1..8\n";
    exit 2
  end;
  let machine =
    match Machine.Presets.by_name machine_name with
    | Some m -> m
    | None ->
      Printf.eprintf "kop_run: unknown machine %s (r415|r350)\n" machine_name;
      exit 2
  in
  let engine =
    match Vm.Engine.kind_of_string engine_name with
    | Some k -> k
    | None ->
      Printf.eprintf "kop_run: unknown engine %s (interp|compiled)\n"
        engine_name;
      exit 2
  in
  let opt =
    match opt_str with
    | None -> None
    | Some s -> (
      match Passes.Pipeline.opt_level_of_string s with
      | Some o -> Some o
      | None ->
        Printf.eprintf "kop_run: unknown --opt level %s (none|basic|aggressive)\n"
          s;
        exit 2)
  in
  if duplex then exit (run_duplex ~machine ~cpus ~no_enforce ~stats);
  let module_path =
    match module_path with
    | Some p -> p
    | None ->
      Printf.eprintf "kop_run: MODULE.kir is required unless --duplex\n";
      exit 2
  in
  try
    let m = Kir.Parser.parse_file module_path in
    (match opt with
    | None | Some Passes.Pipeline.O_none -> ()
    | Some opt ->
      if
        Kir.Types.meta_find m Passes.Guard_injection.meta_guarded
        <> Some "true"
      then begin
        Printf.eprintf
          "kop_run: --opt needs a guarded module (compile it first)\n";
        exit 2
      end;
      let remarks = Passes.Pipeline.reoptimize ~opt m in
      if stats then
        List.iter
          (fun (pass, r) ->
            List.iter
              (fun (k, v) -> Printf.eprintf "  [%s] %s = %s\n" pass k v)
              r.Passes.Pass.remarks)
          remarks);
    let kernel =
      Kernel.create ~require_signature:(not no_enforce)
        ~require_certificate:(not no_enforce) machine
    in
    (* before any kmalloc, so every allocation gets redzones + shadow *)
    if sanitize then Kernel.enable_sanitizer kernel;
    let vm = Vm.Engine.install ~kind:engine kernel in
    if trace > 0 then begin
      let remaining = ref trace in
      Vm.Interp.set_tracer vm
        (Some
           (fun ev ->
             if !remaining > 0 then begin
               decr remaining;
               Printf.eprintf "  [trace %6d] @%s %s: %s\n"
                 ev.Vm.Interp.ev_step ev.Vm.Interp.ev_func
                 ev.Vm.Interp.ev_block ev.Vm.Interp.ev_instr
             end))
    end;
    let pm =
      Policy.Policy_module.install ~on_deny:Policy.Policy_module.Panic kernel
    in
    if guard_trace then
      Trace.start (Policy.Policy_module.enable_trace pm);
    (match policy_path with
    | Some path ->
      Policy.Policy_file.apply_module (Policy.Policy_file.load path) pm
    | None -> Policy.Policy_module.set_policy pm Policy.Region.kernel_only);
    (* an explicit --mode overrides whatever the policy file says *)
    (match mode_str with
    | None -> ()
    | Some s -> (
      match Policy.Policy_module.on_deny_of_string s with
      | Some m -> Policy.Policy_module.set_on_deny pm m
      | None ->
        Printf.eprintf "kop_run: unknown mode %s (panic|quarantine|audit)\n" s;
        exit 2));
    let dump_log () =
      if show_log then
        List.iter
          (fun l -> Printf.eprintf "  [klog] %s\n" l)
          (Kernel.Klog.tail (Kernel.log kernel) 32)
    in
    match Kernel.insmod kernel m with
    | Error e ->
      Printf.eprintf "kop_run: insmod rejected: %s\n"
        (Kernel.load_error_to_string e);
      dump_log ();
      1
    | Ok _lm -> (
      Printf.printf "module %s inserted\n" m.Kir.Types.m_name;
      let finish code =
        (match Policy.Policy_module.trace pm with
        | Some tr when guard_trace ->
          List.iter
            (fun e ->
              Printf.eprintf "  [guard] %s\n" (Trace.format_event e))
            (Trace.events tr);
          let checks, allows, denies, _, _, _ = Trace.totals tr in
          Printf.eprintf
            "  [guard] %d event(s) recorded, %d dropped \
             (checks %d, allows %d, denies %d)\n"
            (Trace.recorded tr) (Trace.dropped tr) checks allows denies
        | _ -> ());
        if stats then begin
          let st = Policy.Engine.stats (Policy.Policy_module.engine pm) in
          Printf.eprintf "guard checks: %d (allowed %d, denied %d)\n"
            st.Policy.Engine.checks st.Policy.Engine.allowed
            st.Policy.Engine.denied;
          Printf.eprintf "cycles: %d\n"
            (Machine.Model.cycles (Kernel.machine kernel))
        end;
        if sanitize && Kernel.san_report_count kernel > 0 then
          Printf.eprintf "%s" (Kernel.san_render kernel);
        dump_log ();
        code
      in
      match call with
      | None -> finish 0
      | Some symbol -> (
        let argv =
          match args with
          | "" -> [||]
          | s ->
            Array.of_list
              (List.map
                 (fun w ->
                   match int_of_string_opt (String.trim w) with
                   | Some v -> v
                   | None ->
                     Printf.eprintf "kop_run: bad argument %s\n" w;
                     exit 2)
                 (String.split_on_char ',' s))
        in
        try
          if cpus > 1 then begin
            (* N simulated CPUs, deterministic round-robin: every CPU
               calls the entry once; policy mutations made while the
               system is up go through the RCU publish path *)
            let smp =
              Smp.System.create ~seed:1 ~params:machine ~cpus kernel pm
            in
            let results = Array.make cpus 0 in
            let steps =
              Array.init cpus (fun i () ->
                  results.(i) <- Kernel.call_symbol kernel symbol argv;
                  false)
            in
            let log, sstats = Smp.System.run smp steps in
            Array.iteri
              (fun i r ->
                Printf.printf "cpu%d: %s(%s) = %d (0x%x)\n" i symbol args r r)
              results;
            Printf.printf "interleave: [%s] in %d slices\n"
              (String.concat "," (List.map string_of_int log))
              sstats.Smp.Sched.slices;
            if stats then begin
              let st =
                Policy.Engine.merged_stats (Policy.Policy_module.engine pm)
              in
              Printf.eprintf
                "merged guard checks: %d (allowed %d, denied %d)\n"
                st.Policy.Engine.checks st.Policy.Engine.allowed
                st.Policy.Engine.denied
            end
          end
          else begin
            let r = Kernel.call_symbol kernel symbol argv in
            Printf.printf "%s(%s) = %d (0x%x)\n" symbol args r r
          end;
          match Kernel.quarantine_records kernel with
          | [] -> finish 0
          | q :: _ ->
            Printf.eprintf
              "module %s QUARANTINED: %s (kernel alive; calls return %d)\n"
              q.Kernel.q_module q.Kernel.q_reason Kernel.eio;
            ignore (finish 0);
            6
        with
        | Kernel.Panic info ->
          Printf.eprintf "KERNEL PANIC: %s\n" info.Kernel.reason;
          List.iter (fun l -> Printf.eprintf "  # %s\n" l) info.Kernel.diag;
          List.iter (fun l -> Printf.eprintf "  | %s\n" l) info.Kernel.log_tail;
          ignore (finish 0);
          4
        | Vm.Interp.Vm_error msg ->
          Printf.eprintf "kop_run: VM error: %s\n" msg;
          finish 1
        | Kernel.Fault { addr; size; what } ->
          Printf.eprintf
            "kop_run: unhandled %s fault at 0x%x (%d bytes) — kernel oops\n"
            what addr size;
          ignore (finish 0);
          5))
  with
  | Kir.Parser.Parse_error (line, msg) ->
    Printf.eprintf "kop_run: parse error at line %d: %s\n" line msg;
    1
  | Policy.Policy_file.Parse_error (line, msg) ->
    Printf.eprintf "kop_run: policy parse error at line %d: %s\n" line msg;
    1

let module_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"MODULE.kir"
    ~doc:"KIR module to insert. Required unless $(b,--duplex) is given.")

let policy_arg =
  Arg.(value & opt (some file) None & info [ "policy" ] ~docv:"POLICY.kop")

let call_arg =
  Arg.(value & opt (some string) None & info [ "call" ] ~docv:"SYMBOL")

let args_arg =
  Arg.(value & opt string "" & info [ "args" ] ~docv:"A,B,…"
    ~doc:"Comma-separated integer arguments (0x… accepted).")

let machine_arg = Arg.(value & opt string "r350" & info [ "machine" ])

let engine_arg =
  Arg.(value & opt string "interp" & info [ "engine" ] ~docv:"ENGINE"
    ~doc:"KIR execution engine: interp or compiled. Simulated cycles are \
          identical; compiled is much faster in wall-clock.")

let opt_arg =
  Arg.(value & opt (some string) None & info [ "opt" ] ~docv:"LEVEL"
    ~doc:"Re-optimize the guarded module before insertion: none, basic \
          (redundant-guard elimination + loop hoisting) or aggressive \
          (certificate-gated coalescing, hoist-widening and \
          interprocedural elimination). The module is re-certified and \
          re-signed, so the loader's checks run against the optimized \
          body.")

let mode_arg =
  Arg.(value & opt (some string) None & info [ "mode" ] ~docv:"MODE"
    ~doc:"Enforcement on guard denial: panic, quarantine, or audit \
          (overrides the policy file).")

let no_enforce =
  Arg.(value & flag & info [ "no-enforce" ]
    ~doc:"Accept unsigned/untransformed modules (today's permissive kernel).")

let log_arg = Arg.(value & flag & info [ "log" ] ~doc:"Dump the kernel log.")
let stats_arg = Arg.(value & flag & info [ "stats" ])

let trace_arg =
  Arg.(value & opt int 0 & info [ "trace" ] ~docv:"N"
    ~doc:"Print the first N interpreted instructions to stderr.")

let guard_trace_arg =
  Arg.(value & flag & info [ "guard-trace" ]
    ~doc:"Record guard/lifecycle events in the carat_trace ring and dump \
          them (with counters) after the run. On a panic the last events \
          are also attached to the panic report.")

let cpus_arg =
  Arg.(value & opt int 1 & info [ "cpus" ] ~docv:"N"
    ~doc:"Run the entry point on N simulated CPUs (1..8) under the \
          deterministic round-robin scheduler. Each CPU calls the entry \
          once; policy mutations made while the system is up route \
          through RCU publication with IPI shootdown of remote guard \
          caches. N=1 is the classic single-CPU path, bit-identical to \
          previous releases.")

let duplex_arg =
  Arg.(value & flag & info [ "duplex" ]
    ~doc:"Skip module insertion and run the full-duplex testbed instead: \
          RSS-steered NAPI receive plus pktgen transmit on every CPU (see \
          $(b,--cpus)), heavy-tailed offered load, reporting per-CPU and \
          total throughput with p50/p99/p999 arrival-to-delivery latency. \
          $(b,--no-enforce) runs the unguarded baseline driver; \
          $(b,--stats) adds the NAPI loop counters. Exits 1 if any stale \
          allow is observed.")

let sanitize_arg =
  Arg.(value & flag & info [ "sanitize" ]
    ~doc:"Enable the kernel memory sanitizer: redzones and an \
          alloc/free-state shadow on every kmalloc/kfree, so \
          out-of-bounds, use-after-free and redzone hits from module \
          code are reported at the faulting access with allocation \
          attribution (reports go to stderr after the run and to \
          /proc/carat/san). Off by default; when off, decisions and \
          cycle counts are bit-identical to a build without the \
          sanitizer.")

let cmd =
  let doc = "insert a KIR module into a simulated CARAT KOP kernel and call it" in
  Cmd.v (Cmd.info "kop_run" ~doc)
    Term.(
      const run $ module_arg $ policy_arg $ call_arg $ args_arg $ machine_arg
      $ engine_arg $ opt_arg $ mode_arg $ no_enforce $ log_arg $ stats_arg
      $ trace_arg $ guard_trace_arg $ cpus_arg $ duplex_arg $ sanitize_arg)

let () = exit (Cmd.eval' cmd)
