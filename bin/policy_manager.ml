(* policy-manager: the paper's operator tool (§3.1, Figure 1) — "a root
   user can communicate with the policy module through an ioctl system
   call to add or remove regions from the table".

   The simulated analogue edits policy files and can exercise them
   against a live simulated kernel through the real /dev/carat ioctl
   path:

     policy_manager init  -o policy.kop            # two-region default
     policy_manager add   policy.kop --base 0x… --len 0x… --prot rw --tag t
     policy_manager remove policy.kop --base 0x…
     policy_manager list  policy.kop
     policy_manager check policy.kop --addr 0x… --size 8 --write
     policy_manager push  policy.kop               # load into a simulated
                                                   # kernel via ioctls and
                                                   # report the table
     policy_manager set-mode policy.kop quarantine # enforcement on deny:
                                                   # panic|quarantine|audit,
                                                   # persisted and set live
                                                   # via the ioctl *)

open Cmdliner
open Carat_kop

let load_or_empty path =
  if Sys.file_exists path then Policy.Policy_file.load path
  else
    {
      Policy.Policy_file.default_allow = false;
      mode = Policy.Policy_module.Panic;
      domain = "";
      regions = [];
    }

let cmd_init output =
  let t = Policy.Policy_file.kernel_only in
  (match output with
  | Some path -> Policy.Policy_file.save path t
  | None -> print_string (Policy.Policy_file.to_string t));
  0

let cmd_add file base len prot tag prepend =
  let t = load_or_empty file in
  let prot = Policy.Policy_file.prot_of_string 0 prot in
  let r = Policy.Region.v ~tag ~base ~len ~prot () in
  let regions =
    if prepend then r :: t.Policy.Policy_file.regions
    else t.Policy.Policy_file.regions @ [ r ]
  in
  if List.length regions > Policy.Linear_table.default_capacity then begin
    Printf.eprintf "policy_manager: table is limited to %d regions\n"
      Policy.Linear_table.default_capacity;
    1
  end
  else begin
    Policy.Policy_file.save file { t with Policy.Policy_file.regions };
    0
  end

let cmd_remove file base =
  let t = load_or_empty file in
  (* first occurrence only: duplicate-base rules are legal (first match
     wins), so removing by base must peel one rule per invocation — the
     same semantics as the in-kernel tables and the remove ioctl *)
  let rec drop_first = function
    | [] -> []
    | (r : Policy.Region.t) :: tl ->
      if r.Policy.Region.base = base then tl else r :: drop_first tl
  in
  let regions = drop_first t.Policy.Policy_file.regions in
  if List.length regions = List.length t.Policy.Policy_file.regions then begin
    Printf.eprintf "policy_manager: no region with base 0x%x\n" base;
    1
  end
  else begin
    Policy.Policy_file.save file { t with Policy.Policy_file.regions };
    0
  end

let cmd_list file =
  let t = Policy.Policy_file.load file in
  Printf.printf "default: %s\n"
    (if t.Policy.Policy_file.default_allow then "allow" else "deny");
  Printf.printf "mode:    %s\n"
    (Policy.Policy_module.on_deny_to_string t.Policy.Policy_file.mode);
  List.iteri
    (fun i r -> Printf.printf "%2d. %s\n" i (Policy.Region.to_string r))
    t.Policy.Policy_file.regions;
  0

let cmd_check file addr size write =
  let t = Policy.Policy_file.load file in
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
  let engine = Policy.Engine.create kernel in
  Policy.Policy_file.apply t engine;
  let flags =
    if write then Policy.Region.prot_write else Policy.Region.prot_read
  in
  (match Policy.Engine.check engine ~addr ~size ~flags with
  | Policy.Engine.Allowed (Some r) ->
    Printf.printf "ALLOWED by %s\n" (Policy.Region.to_string r);
    0
  | Policy.Engine.Allowed None ->
    Printf.printf "ALLOWED by default-allow\n";
    0
  | Policy.Engine.Denied (Some r) ->
    Printf.printf "DENIED: matched %s but permissions are insufficient\n"
      (Policy.Region.to_string r);
    3
  | Policy.Engine.Denied None ->
    Printf.printf "DENIED: no matching region (default deny)\n";
    3)

let cmd_push file =
  (* exercise the real ioctl path against a simulated kernel, exactly as
     the tool in Figure 1 does *)
  let t = Policy.Policy_file.load file in
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
  let pm =
    Policy.Policy_module.install ~on_deny:Policy.Policy_module.Audit kernel
  in
  let arg = Kernel.map_user kernel ~size:32 in
  let rc = ref 0 in
  ignore
    (Kernel.ioctl kernel ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_set_default
       ~arg:(if t.Policy.Policy_file.default_allow then 1 else 0));
  List.iter
    (fun (r : Policy.Region.t) ->
      Kernel.write kernel ~addr:arg ~size:8 r.Policy.Region.base;
      Kernel.write kernel ~addr:(arg + 8) ~size:8 r.Policy.Region.len;
      Kernel.write kernel ~addr:(arg + 16) ~size:8 r.Policy.Region.prot;
      let res =
        Kernel.ioctl kernel ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_add ~arg
      in
      if res <> 0 then begin
        Printf.eprintf "ioctl add failed for %s\n" (Policy.Region.to_string r);
        rc := 1
      end)
    t.Policy.Policy_file.regions;
  let n =
    Kernel.ioctl kernel ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_count ~arg:0
  in
  Printf.printf "pushed %d region(s) via /dev/carat; kernel table:\n" n;
  List.iteri
    (fun i r -> Printf.printf "%2d. %s\n" i (Policy.Region.to_string r))
    (Policy.Engine.regions (Policy.Policy_module.engine pm));
  !rc

(* Batched install through ioctl_install: one syscall pushes the whole
   policy atomically — readers observe the old table or the new one,
   never a partially-installed batch. With a `domain` directive in the
   file (or --domain NAME) the batch lands in a freshly created policy
   domain instead of the root table. *)
let cmd_push_batch file domain_override =
  let t = Policy.Policy_file.load file in
  let domain_name =
    match domain_override with
    | Some d -> d
    | None -> t.Policy.Policy_file.domain
  in
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
  let pm =
    Policy.Policy_module.install ~on_deny:Policy.Policy_module.Audit kernel
  in
  let ioctl cmd arg = Kernel.ioctl kernel ~dev:"carat" ~cmd ~arg in
  let dom_id =
    if domain_name = "" then 0
    else
      ioctl Policy.Policy_module.ioctl_domain_create
        (if t.Policy.Policy_file.default_allow then 1 else 0)
  in
  if dom_id < 0 then begin
    Printf.eprintf "policy_manager: domain create failed (rc=%d)\n" dom_id;
    1
  end
  else begin
    if dom_id = 0 then
      ignore
        (ioctl Policy.Policy_module.ioctl_set_default
           (if t.Policy.Policy_file.default_allow then 1 else 0));
    let regions = t.Policy.Policy_file.regions in
    let n = List.length regions in
    let arg = Kernel.map_user kernel ~size:(16 + (n * 24)) in
    Kernel.write kernel ~addr:arg ~size:8 dom_id;
    Kernel.write kernel ~addr:(arg + 8) ~size:8 n;
    List.iteri
      (fun i (r : Policy.Region.t) ->
        let a = arg + 16 + (i * 24) in
        Kernel.write kernel ~addr:a ~size:8 r.Policy.Region.base;
        Kernel.write kernel ~addr:(a + 8) ~size:8 r.Policy.Region.len;
        Kernel.write kernel ~addr:(a + 16) ~size:8 r.Policy.Region.prot)
      regions;
    let rc = ioctl Policy.Policy_module.ioctl_install arg in
    if rc <> 0 then begin
      Printf.eprintf "policy_manager: batched install failed (rc=%d%s)\n" rc
        (if rc = Kernel.enospc then " -ENOSPC, whole batch rolled back"
         else "");
      1
    end
    else begin
      if dom_id = 0 then begin
        let count = ioctl Policy.Policy_module.ioctl_count 0 in
        Printf.printf
          "installed %d region(s) atomically via ioctl_install; kernel table \
           (%d):\n"
          n count;
        List.iteri
          (fun i r -> Printf.printf "%2d. %s\n" i (Policy.Region.to_string r))
          (Policy.Engine.regions (Policy.Policy_module.engine pm))
      end
      else begin
        let stat = Kernel.map_user kernel ~size:64 in
        Kernel.write kernel ~addr:stat ~size:8 dom_id;
        ignore (ioctl Policy.Policy_module.ioctl_domain_stats stat);
        let w i = Kernel.read kernel ~addr:(stat + (i * 8)) ~size:8 in
        Printf.printf
          "installed %d region(s) atomically into domain %d (%s): regions=%d \
           epoch=%d structure=%s\n"
          n dom_id domain_name (w 0) (w 1)
          (if w 5 = 1 then "interval" else "linear")
      end;
      0
    end
  end

(* Multi-tenant demonstration: create N policy domains over one kernel,
   batch-install the policy into each, probe every domain, and report
   the per-domain counters through ioctl_domain_stats and
   /proc/carat/domains. One scratch domain is created and destroyed to
   exercise teardown churn. *)
let cmd_domains file count =
  if count < 1 || count > 256 then begin
    Printf.eprintf "policy_manager: domains needs --count 1..256\n";
    2
  end
  else
    let t = Policy.Policy_file.load file in
    let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
    let pm =
      Policy.Policy_module.install ~on_deny:Policy.Policy_module.Audit kernel
    in
    let ioctl cmd arg = Kernel.ioctl kernel ~dev:"carat" ~cmd ~arg in
    let regions = t.Policy.Policy_file.regions in
    let n = List.length regions in
    let arg = Kernel.map_user kernel ~size:(16 + (n * 24)) in
    let rc = ref 0 in
    let default_arg = if t.Policy.Policy_file.default_allow then 1 else 0 in
    let ids =
      List.init count (fun _ ->
          let id = ioctl Policy.Policy_module.ioctl_domain_create default_arg in
          if id <= 0 then rc := 1;
          Kernel.write kernel ~addr:arg ~size:8 id;
          Kernel.write kernel ~addr:(arg + 8) ~size:8 n;
          List.iteri
            (fun i (r : Policy.Region.t) ->
              let a = arg + 16 + (i * 24) in
              Kernel.write kernel ~addr:a ~size:8 r.Policy.Region.base;
              Kernel.write kernel ~addr:(a + 8) ~size:8 r.Policy.Region.len;
              Kernel.write kernel ~addr:(a + 16) ~size:8 r.Policy.Region.prot)
            regions;
          if ioctl Policy.Policy_module.ioctl_install arg <> 0 then rc := 1;
          id)
    in
    (* teardown churn: a scratch domain must come and go without
       disturbing the live ones *)
    let scratch = ioctl Policy.Policy_module.ioctl_domain_create 0 in
    if ioctl Policy.Policy_module.ioctl_domain_destroy scratch <> 0 then
      rc := 1;
    let live = ioctl Policy.Policy_module.ioctl_domain_count 0 in
    if live <> count then rc := 1;
    (match Policy.Policy_module.domains pm with
    | None -> rc := 1
    | Some dm ->
      (* probe every domain so the counters are live *)
      List.iter
        (fun id ->
          List.iter
            (fun (r : Policy.Region.t) ->
              ignore
                (Policy.Domain.check dm ~domain:id ~addr:r.Policy.Region.base
                   ~size:8 ~flags:Policy.Region.prot_read))
            regions;
          ignore
            (Policy.Domain.check dm ~domain:id ~addr:0x10 ~size:8
               ~flags:Policy.Region.prot_write))
        ids);
    Printf.printf "%d domain(s) live (1 scratch destroyed), %d region(s) each\n"
      live n;
    let stat = Kernel.map_user kernel ~size:64 in
    List.iter
      (fun id ->
        Kernel.write kernel ~addr:stat ~size:8 id;
        if ioctl Policy.Policy_module.ioctl_domain_stats stat <> 0 then rc := 1
        else
          let w i = Kernel.read kernel ~addr:(stat + (i * 8)) ~size:8 in
          Printf.printf
            "  dom%-3d regions=%-4d epoch=%-3d checks=%-5d allowed=%-5d \
             denied=%-5d %s sh=%d/%d\n"
            id (w 0) (w 1) (w 2) (w 3) (w 4)
            (if w 5 = 1 then "interval" else "linear  ")
            (w 6) (w 7))
      ids;
    (* the same numbers as the operator reads them from procfs *)
    let fs = Kernsvc.Kernfs.create kernel in
    let proc = Kernsvc.Procfs.install fs pm in
    print_newline ();
    print_string (Kernsvc.Procfs.read_domains proc);
    !rc

(* Shared setup for the observability commands: a live simulated kernel
   with the policy loaded (audit mode, so denied probes don't panic) and
   the site inline cache on, so the fast-tier counters have something to
   show. Returns the kernel and policy module. *)
let observability_kernel t =
  let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
  let pm =
    Policy.Policy_module.install ~on_deny:Policy.Policy_module.Audit
      ~site_cache:true kernel
  in
  Policy.Policy_module.set_policy pm t.Policy.Policy_file.regions;
  Policy.Engine.set_default_allow
    (Policy.Policy_module.engine pm)
    t.Policy.Policy_file.default_allow;
  (kernel, pm)

(* Deterministic probe workload: three rounds over every region (read at
   base, write at last word) plus one low-address access no sane policy
   allows — enough traffic to populate every counter class. *)
let probe_workload pm regions =
  for _round = 1 to 3 do
    List.iteri
      (fun i (r : Policy.Region.t) ->
        (* distinct sites for the read and write probes, so repeat rounds
           hit the per-site inline cache instead of thrashing it *)
        ignore
          (Policy.Policy_module.guard pm ~site:(2 * i)
             ~addr:r.Policy.Region.base ~size:8 ~flags:Policy.Region.prot_read);
        ignore
          (Policy.Policy_module.guard pm
             ~site:((2 * i) + 1)
             ~addr:(r.Policy.Region.base + r.Policy.Region.len - 8)
             ~size:8 ~flags:Policy.Region.prot_write))
      regions;
    ignore
      (Policy.Policy_module.guard pm
         ~site:(2 * List.length regions)
         ~addr:0x10 ~size:8 ~flags:Policy.Region.prot_write)
  done

(* Driver-workload section of the stats command: compile the e1000e
   driver at the requested guard-optimization tier, insert it into a
   fresh simulated kernel, push traffic, and report what the tier does
   to the dynamic check count. *)
let driver_stats opt =
  let config =
    {
      Testbed.default_config with
      technique = Testbed.Carat;
      guard_opt = opt;
      site_cache = true;
      module_scale = 6;
    }
  in
  let tb = Testbed.create ~config () in
  let r =
    Testbed.run_pktgen tb
      { Net.Pktgen.default_config with count = 100; size = 128; seed = 7 }
  in
  let st =
    Policy.Engine.stats (Policy.Policy_module.engine tb.Testbed.policy_module)
  in
  Printf.printf
    "driver workload (--opt %s): static_guards=%d checks=%d allowed=%d \
     denied=%d checks/pkt=%.1f\n"
    (Passes.Pipeline.opt_level_to_string opt)
    (Passes.Guard_injection.count_guards tb.Testbed.driver_kir)
    st.Policy.Engine.checks st.Policy.Engine.allowed st.Policy.Engine.denied
    (float_of_int st.Policy.Engine.checks
    /. float_of_int (max 1 r.Net.Pktgen.sent))

let cmd_stats file opt_str =
  let opt =
    match opt_str with
    | None -> None
    | Some s -> (
      match Passes.Pipeline.opt_level_of_string s with
      | Some o -> Some o
      | None ->
        Printf.eprintf
          "policy_manager: unknown --opt level %s (none|basic|aggressive)\n" s;
        exit 2)
  in
  let t = Policy.Policy_file.load file in
  let kernel, pm = observability_kernel t in
  (* attach the trace ring through the operator ioctl, as a root tool
     would, then drive the probe so the counters are live *)
  ignore
    (Kernel.ioctl kernel ~dev:"carat"
       ~cmd:Policy.Policy_module.ioctl_trace_start ~arg:0);
  probe_workload pm t.Policy.Policy_file.regions;
  (* ioctl_get_stats: 8 words into user memory *)
  let arg = Kernel.map_user kernel ~size:64 in
  let rc =
    Kernel.ioctl kernel ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_get_stats
      ~arg
  in
  if rc <> 0 then begin
    Printf.eprintf "policy_manager: ioctl_get_stats failed (rc=%d)\n" rc;
    1
  end
  else begin
    let w i = Kernel.read kernel ~addr:(arg + (i * 8)) ~size:8 in
    Printf.printf
      "ioctl_get_stats: checks=%d allowed=%d denied=%d entries_scanned=%d\n"
      (w 0) (w 1) (w 2) (w 3);
    Printf.printf
      "                 ic_hits=%d ic_misses=%d trace_recorded=%d dropped=%d\n"
      (w 4) (w 5) (w 6) (w 7);
    (* the same numbers as the operator reads them from /proc/carat/stats *)
    let fs = Kernsvc.Kernfs.create kernel in
    let proc = Kernsvc.Procfs.install fs pm in
    print_newline ();
    print_string (Kernsvc.Procfs.read_stats proc);
    (match opt with
    | None -> ()
    | Some o ->
      print_newline ();
      driver_stats o);
    0
  end

let cmd_netstats cpus =
  if cpus < 1 || cpus > 8 then begin
    Printf.eprintf "policy_manager: --cpus expects 1..8\n";
    exit 2
  end;
  let config =
    { Smp_testbed.default_config with cpus; rx_queues = cpus; seed = 13 }
  in
  let tb = Smp_testbed.create ~config () in
  (* a short duplex workload with mid-run policy churn, so the counters
     the operator reads reflect guarded RX under RCU updates *)
  let r = Smp_testbed.run_traffic ~count:150 ~churn:31 tb in
  let rx =
    match Smp_testbed.rx tb with Some rx -> rx | None -> assert false
  in
  let fs = Kernsvc.Kernfs.create (Smp_testbed.kernel tb) in
  let proc = Kernsvc.Procfs.install fs (Smp_testbed.policy_module tb) in
  Kernsvc.Procfs.set_net_render proc (fun () -> Net.Rx.render rx);
  print_string (Kernsvc.Procfs.read_net proc);
  Printf.printf
    "\nduplex: tx %.0f pps, rx %.0f pps, %d frames, %d dropped, %d \
     publications, %d stale allows\n"
    r.Smp_testbed.d_tx_pps r.Smp_testbed.d_rx_pps r.Smp_testbed.d_rx_frames
    r.Smp_testbed.d_rx_dropped r.Smp_testbed.d_publications
    r.Smp_testbed.d_stale_allows;
  if r.Smp_testbed.d_stale_allows <> 0 then 1 else 0

let cmd_trace file =
  let t = Policy.Policy_file.load file in
  let kernel, pm = observability_kernel t in
  ignore
    (Kernel.ioctl kernel ~dev:"carat"
       ~cmd:Policy.Policy_module.ioctl_trace_start ~arg:0);
  probe_workload pm t.Policy.Policy_file.regions;
  ignore
    (Kernel.ioctl kernel ~dev:"carat"
       ~cmd:Policy.Policy_module.ioctl_trace_stop ~arg:0);
  (* drain the ring through ioctl_trace_read, one 8-word event per call *)
  let arg = Kernel.map_user kernel ~size:64 in
  let n = ref 0 in
  let rec drain () =
    let rc =
      Kernel.ioctl kernel ~dev:"carat"
        ~cmd:Policy.Policy_module.ioctl_trace_read ~arg
    in
    if rc = 1 then begin
      let w i = Kernel.read kernel ~addr:(arg + (i * 8)) ~size:8 in
      let kind = Trace.kind_to_string (Trace.kind_of_int (w 2)) in
      Printf.printf "#%-4d @%-8d %-14s site=%-3d 0x%08x+%-4d flags=%d info=0x%x\n"
        (w 0) (w 1) kind (w 3) (w 4) (w 5) (w 6) (w 7);
      incr n;
      drain ()
    end
  in
  drain ();
  (match Policy.Policy_module.trace pm with
  | Some tr ->
    Printf.printf "%d event(s) read; %d dropped (ring capacity %d)\n" !n
      (Trace.dropped tr) (Trace.capacity tr)
  | None -> ());
  0

(* Update storm on a live SMP kernel: one CPU churns the policy through
   the real /dev/carat ioctls (remove + re-add the first region,
   [updates] times) while every other CPU hammers guard checks over the
   same regions from warm inline-cache sites. With the engine's paranoid
   verifier on, any guard that an inline cache allows against the
   *published* table counts as a stale allow — the bug class RCU
   publication + IPI shootdown exists to make impossible. *)
let cmd_storm file cpus updates =
  if cpus < 2 || cpus > 8 then begin
    Printf.eprintf "policy_manager: storm needs --cpus 2..8\n";
    2
  end
  else
    let t = Policy.Policy_file.load file in
    match t.Policy.Policy_file.regions with
    | [] ->
      Printf.eprintf "policy_manager: %s has no regions to churn\n" file;
      1
    | victim :: _ ->
      let kernel, pm = observability_kernel t in
      let engine = Policy.Policy_module.engine pm in
      Policy.Engine.set_verify engine true;
      let smp =
        Smp.System.create ~seed:9 ~params:Machine.Presets.r350 ~cpus kernel pm
      in
      let arg = Kernel.map_user kernel ~size:32 in
      let ioctl cmd = Kernel.ioctl kernel ~dev:"carat" ~cmd ~arg in
      let regions = Array.of_list t.Policy.Policy_file.regions in
      let bad_rc = ref 0 in
      (* CPU 0: alternate remove / re-add of the first region *)
      let writer_ops = ref 0 in
      let writer () =
        if !writer_ops >= 2 * updates then false
        else begin
          let rc =
            if !writer_ops mod 2 = 0 then begin
              Kernel.write kernel ~addr:arg ~size:8 victim.Policy.Region.base;
              ioctl Policy.Policy_module.ioctl_remove
            end
            else begin
              Kernel.write kernel ~addr:arg ~size:8 victim.Policy.Region.base;
              Kernel.write kernel ~addr:(arg + 8) ~size:8
                victim.Policy.Region.len;
              Kernel.write kernel ~addr:(arg + 16) ~size:8
                victim.Policy.Region.prot;
              ioctl Policy.Policy_module.ioctl_add
            end
          in
          if rc <> 0 then incr bad_rc;
          incr writer_ops;
          true
        end
      in
      (* other CPUs: read-probe every region base from per-region sites,
         keeping each CPU's site inline cache warm across the churn *)
      let reader_rounds = 3 * updates in
      let reader _i =
        let ops = ref 0 in
        fun () ->
          if !ops >= reader_rounds then false
          else begin
            let r = regions.(!ops mod Array.length regions) in
            ignore
              (Policy.Policy_module.guard pm ~site:(!ops mod Array.length regions)
                 ~addr:r.Policy.Region.base ~size:8
                 ~flags:Policy.Region.prot_read);
            incr ops;
            true
          end
      in
      let steps =
        Array.init cpus (fun i -> if i = 0 then writer else reader i)
      in
      let log, sstats = Smp.System.run smp steps in
      let st = Policy.Engine.merged_stats engine in
      let rs = Smp.Rcu.stats (Smp.System.rcu smp) in
      let stale = Policy.Engine.stale_allows engine in
      let ops = Smp.System.ops_by_cpu smp log in
      Printf.printf "update storm: %d CPUs, %d remove/re-add pairs, %d slices\n"
        cpus updates sstats.Smp.Sched.slices;
      Printf.printf "  ops by cpu:  %s\n"
        (String.concat " "
           (Array.to_list (Array.mapi (Printf.sprintf "cpu%d=%d") ops)));
      Printf.printf
        "  rcu:         %d publications, %d retired, generation %d\n"
        rs.Smp.Rcu.publications rs.Smp.Rcu.retired
        (Policy.Engine.generation engine);
      Printf.printf
        "  shootdowns:  %d IPIs sent, %d taken (%d remote cycles)\n"
        rs.Smp.Rcu.ipis_sent rs.Smp.Rcu.ipis_taken rs.Smp.Rcu.ipi_cycles;
      if rs.Smp.Rcu.retired > 0 then
        Printf.printf "  grace:       %.1f quiescent points on average\n"
          (float_of_int rs.Smp.Rcu.grace_quiescents
          /. float_of_int rs.Smp.Rcu.retired);
      Printf.printf "  guards:      %d checks (%d allowed, %d denied)\n"
        st.Policy.Engine.checks st.Policy.Engine.allowed
        st.Policy.Engine.denied;
      Printf.printf "  stale allows after publish: %d\n" stale;
      if stale = 0 && !bad_rc = 0 && rs.Smp.Rcu.retired = rs.Smp.Rcu.publications
      then begin
        print_endline "OK: updates atomic under fire; no stale allow observed";
        0
      end
      else begin
        Printf.eprintf
          "policy_manager: storm FAILED (stale=%d bad_rc=%d retired=%d/%d)\n"
          stale !bad_rc rs.Smp.Rcu.retired rs.Smp.Rcu.publications;
        1
      end

(* Self-healing demonstration on a live simulated kernel: load the
   policy with the full guard tiers up (shadow table + site inline
   caches), turn on the integrity watchdog, run a clean audit through
   the operator ioctl, then corrupt every derived tier out-of-band and
   let the watchdog detect, degrade, rebuild, and re-promote. Exits
   nonzero if the kernel does not heal back to the full fast path. *)
let cmd_audit file =
  let t = Policy.Policy_file.load file in
  match t.Policy.Policy_file.regions with
  | [] ->
    Printf.eprintf "policy_manager: %s has no regions to audit\n" file;
    1
  | first :: _ ->
    let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
    let pm =
      Policy.Policy_module.install ~kind:Policy.Engine.Shadow ~site_cache:true
        ~on_deny:Policy.Policy_module.Audit kernel
    in
    Policy.Policy_module.set_policy pm t.Policy.Policy_file.regions;
    Policy.Engine.set_default_allow
      (Policy.Policy_module.engine pm)
      t.Policy.Policy_file.default_allow;
    let wd = Policy.Policy_module.enable_watchdog ~period:5_000 pm in
    let ig =
      match Policy.Policy_module.integrity pm with
      | Some ig -> ig
      | None -> assert false
    in
    let engine = Policy.Policy_module.engine pm in
    Policy.Engine.set_verify engine true;
    let clean =
      Kernel.ioctl kernel ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_audit
        ~arg:0
    in
    Printf.printf "clean audit (ioctl 18): %d corrupt tier(s)\n" clean;
    (* wild-write each tier out-of-band, bypassing the epoch choke
       point — exactly what the watchdog exists to catch — and let the
       periodic audit detect, degrade, rebuild, and re-promote before
       moving to the next tier *)
    let page = first.Policy.Region.base lsr Policy.Shadow_table.page_bits in
    let episode (tier, corrupt) =
      (* warm the slot the wild write targets *)
      ignore
        (Policy.Engine.check engine ~addr:first.Policy.Region.base ~size:8
           ~flags:Policy.Region.prot_read);
      if not (corrupt ()) then
        Printf.printf "corrupt %-16s SKIPPED (tier not live)\n" tier
      else begin
        let d0 = Policy.Integrity.detections ig in
        let steps = ref 0 in
        while
          (not
             (Policy.Integrity.detections ig > d0
             && Policy.Integrity.healthy ig
             && Policy.Integrity.tier_level ig = 2))
          && !steps < 200
        do
          incr steps;
          ignore (Kernel.Watchdog.advance wd ~cycles:1_000)
        done;
        Printf.printf
          "corrupt %-16s detected by watchdog, tier rebuilt (level %d)\n" tier
          (Policy.Integrity.tier_level ig)
      end
    in
    List.iter episode
      [
        ( "inline cache",
          fun () ->
            Policy.Engine.corrupt_site_cache engine
              (Policy.Engine.default_view engine)
              ~site:1 ~page ~prot:Policy.Region.prot_rw ~smash_canary:true );
        ( "shadow table",
          fun () ->
            Policy.Engine.corrupt_shadow engine ~page
              ~prot:Policy.Region.prot_rw ~fix_checksum:true );
        ( "policy instance",
          fun () ->
            Policy.Engine.corrupt_instance engine
              ~base:first.Policy.Region.base
              ~prot:
                (if first.Policy.Region.prot = 0 then Policy.Region.prot_rw
                 else 0) );
      ];
    print_newline ();
    print_string (Policy.Integrity.render ig);
    (* the same numbers as the selfheal ioctl block reports them *)
    let arg = Kernel.map_user kernel ~size:64 in
    let rc =
      Kernel.ioctl kernel ~dev:"carat"
        ~cmd:Policy.Policy_module.ioctl_selfheal ~arg
    in
    if rc = 0 then begin
      let w i = Kernel.read kernel ~addr:(arg + (i * 8)) ~size:8 in
      Printf.printf
        "ioctl_selfheal: audits=%d detections=%d degradations=%d rebuilds=%d\n"
        (w 0) (w 1) (w 2) (w 3);
      Printf.printf
        "                abandoned=%d tier_level=%d ic_enabled=%d healthy=%d\n"
        (w 4) (w 5) (w 6) (w 7)
    end;
    let healed =
      Policy.Integrity.healthy ig
      && Policy.Integrity.tier_level ig = 2
      && Policy.Integrity.detections ig >= 3
      && Policy.Integrity.rebuilds ig >= 3
      && Policy.Engine.stale_allows engine = 0
    in
    if healed then begin
      Printf.printf
        "OK: all tiers detected, rebuilt, and re-promoted (%d watchdog fires, \
         0 stale allows)\n"
        (Kernel.Watchdog.fires wd);
      0
    end
    else begin
      Printf.eprintf
        "policy_manager: audit FAILED (healthy=%b tier_level=%d stale=%d)\n"
        (Policy.Integrity.healthy ig)
        (Policy.Integrity.tier_level ig)
        (Policy.Engine.stale_allows engine);
      3
    end

let cmd_lint file =
  let t = Policy.Policy_file.load file in
  let findings = Policy.Policy_lint.lint t in
  List.iter
    (fun f -> print_endline (Policy.Policy_lint.finding_to_string f))
    findings;
  let errs = Policy.Policy_lint.errors findings in
  Printf.printf "%s: %d error(s), %d warning(s) over %d region(s)\n" file
    (List.length errs)
    (List.length (Policy.Policy_lint.warnings findings))
    (List.length t.Policy.Policy_file.regions);
  if errs <> [] then 3 else 0

let cmd_set_mode file mode_str =
  match Policy.Policy_module.on_deny_of_string mode_str with
  | None ->
    Printf.eprintf
      "policy_manager: unknown mode %s (expected panic|quarantine|audit)\n"
      mode_str;
    1
  | Some mode ->
    let t = load_or_empty file in
    Policy.Policy_file.save file { t with Policy.Policy_file.mode };
    (* flip the mode on a live simulated kernel through the real ioctl,
       as a root operator would at run time *)
    let kernel = Kernel.create ~require_signature:false Machine.Presets.r350 in
    let pm = Policy.Policy_module.install kernel in
    let rc =
      Kernel.ioctl kernel ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_set_mode
        ~arg:(Policy.Policy_module.on_deny_to_int mode)
    in
    let live =
      Kernel.ioctl kernel ~dev:"carat" ~cmd:Policy.Policy_module.ioctl_get_mode
        ~arg:0
    in
    if
      rc <> 0
      || Policy.Policy_module.on_deny_of_int live <> Some mode
      || Policy.Policy_module.mode pm <> mode
    then begin
      Printf.eprintf "policy_manager: live mode switch failed (rc=%d)\n" rc;
      1
    end
    else begin
      Printf.printf "enforcement mode: %s (saved to %s; live ioctl ok)\n"
        (Policy.Policy_module.on_deny_to_string mode)
        file;
      0
    end

(* -- cmdliner wiring -- *)

let file_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"POLICY")
let out_arg = Arg.(value & opt (some string) None & info [ "o" ] ~docv:"OUTPUT")
let base_arg = Arg.(required & opt (some int) None & info [ "base" ])
let len_arg = Arg.(required & opt (some int) None & info [ "len" ])
let prot_arg = Arg.(value & opt string "rw" & info [ "prot" ])
let tag_arg = Arg.(value & opt string "" & info [ "tag" ])
let prepend_arg =
  Arg.(value & flag & info [ "prepend" ]
    ~doc:"Insert before existing rules (first match wins).")
let addr_arg = Arg.(required & opt (some int) None & info [ "addr" ])
let size_arg = Arg.(value & opt int 8 & info [ "size" ])
let write_arg = Arg.(value & flag & info [ "write" ])

let init_cmd =
  Cmd.v (Cmd.info "init" ~doc:"write the canonical two-region policy")
    Term.(const cmd_init $ out_arg)

let add_cmd =
  Cmd.v (Cmd.info "add" ~doc:"append a region rule")
    Term.(const cmd_add $ file_arg $ base_arg $ len_arg $ prot_arg $ tag_arg $ prepend_arg)

let remove_cmd =
  Cmd.v (Cmd.info "remove" ~doc:"remove the rule with the given base")
    Term.(const cmd_remove $ file_arg $ base_arg)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"print the rules") Term.(const cmd_list $ file_arg)

let check_cmd =
  Cmd.v (Cmd.info "check" ~doc:"evaluate one access against the policy")
    Term.(const cmd_check $ file_arg $ addr_arg $ size_arg $ write_arg)

let push_cmd =
  Cmd.v (Cmd.info "push" ~doc:"load the policy into a simulated kernel via ioctl")
    Term.(const cmd_push $ file_arg)

let domain_override_arg =
  Arg.(value & opt (some string) None & info [ "domain" ] ~docv:"NAME"
    ~doc:"Install into this policy domain instead of the file's \
          $(b,domain) directive (empty = the root table).")

let push_batch_cmd =
  Cmd.v
    (Cmd.info "push-batch"
       ~doc:
         "install the whole policy in one atomic ioctl_install batch — \
          readers see the old table or the new one, never a partial \
          batch; honors the file's domain directive or --domain")
    Term.(const cmd_push_batch $ file_arg $ domain_override_arg)

let count_domains_arg =
  Arg.(value & opt int 4 & info [ "count" ] ~docv:"N"
    ~doc:"Number of policy domains to create (1..256).")

let domains_cmd =
  Cmd.v
    (Cmd.info "domains"
       ~doc:
         "create N policy domains on one simulated kernel, batch-install \
          the policy into each, probe them, and report per-domain stats \
          via ioctl_domain_stats and /proc/carat/domains")
    Term.(const cmd_domains $ file_arg $ count_domains_arg)

let mode_arg =
  Arg.(required & pos 1 (some string) None & info [] ~docv:"MODE"
    ~doc:"Enforcement on guard denial: panic, quarantine, or audit.")

let opt_arg =
  Arg.(value & opt (some string) None & info [ "opt" ] ~docv:"LEVEL"
    ~doc:"Also compile the e1000e driver at this guard-optimization \
          level (none, basic or aggressive), insert it, drive traffic \
          and report the dynamic check count at that tier.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "load the policy into a simulated kernel, drive a probe workload, \
          and print guard counters via ioctl_get_stats and /proc/carat/stats")
    Term.(const cmd_stats $ file_arg $ opt_arg)

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "record the probe workload's guard events in the carat_trace ring \
          and drain them via ioctl_trace_read")
    Term.(const cmd_trace $ file_arg)

let netstats_cpus_arg =
  Arg.(value & opt int 4 & info [ "cpus" ] ~docv:"N"
    ~doc:"Simulated CPUs; each owns one RSS-steered RX queue (1..8).")

let netstats_cmd =
  Cmd.v
    (Cmd.info "netstats"
       ~doc:
         "run a short full-duplex workload (RSS-steered NAPI receive, \
          pktgen transmit, mid-run policy churn) and print the operator's \
          /proc/carat/net view of the RX queues; exit 1 on any stale allow")
    Term.(const cmd_netstats $ netstats_cpus_arg)

let cpus_storm_arg =
  Arg.(value & opt int 4 & info [ "cpus" ] ~docv:"N"
    ~doc:"Number of simulated CPUs (2..8).")

let updates_arg =
  Arg.(value & opt int 24 & info [ "updates" ] ~docv:"K"
    ~doc:"Remove/re-add pairs the writer CPU pushes through the ioctls.")

let storm_cmd =
  Cmd.v
    (Cmd.info "storm"
       ~doc:
         "stress policy updates on a simulated SMP kernel: one CPU churns \
          the table via ioctls (RCU publication + IPI shootdown) while the \
          others run guard checks; fails if any stale allow is observed")
    Term.(const cmd_storm $ file_arg $ cpus_storm_arg $ updates_arg)

let set_mode_cmd =
  Cmd.v
    (Cmd.info "set-mode"
       ~doc:"set the enforcement mode (panic|quarantine|audit), live and on disk")
    Term.(const cmd_set_mode $ file_arg $ mode_arg)

let audit_cmd =
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "load the policy with full guard tiers and the integrity watchdog, \
          corrupt every derived tier out-of-band, and verify the kernel \
          detects, degrades, rebuilds, and re-promotes; exit 3 if unhealed")
    Term.(const cmd_audit $ file_arg)

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "statically check the policy for dead (shadowed) rules, \
          order-sensitive overlaps, capacity overflow, write-only \
          protections and shadow-table blind spots; exit 3 on errors")
    Term.(const cmd_lint $ file_arg)

let () =
  let doc = "manage CARAT KOP memory-access policies (firewall rules)" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "policy_manager" ~doc)
          [
            init_cmd; add_cmd; remove_cmd; list_cmd; check_cmd; push_cmd;
            push_batch_cmd; domains_cmd; stats_cmd; trace_cmd; netstats_cmd;
            set_mode_cmd; storm_cmd; audit_cmd; lint_cmd;
          ]))
