(* kop-compile: the CARAT KOP "compiler" driver (paper §3.3) — the
   wrapper that runs the guard-injection pass pipeline over a module and
   signs the result.

     kop_compile input.kir -o output.kir [--opt LEVEL] [--strict]
                 [--exempt-stack] [--key KEY] [--signer NAME] [--stats]
     kop_compile --emit-driver [--scale N] [--rogue] -o e1000e.kir

   --emit-driver writes the generated e1000e driver source, which is how
   you get a realistic input module to play with. *)

open Cmdliner
open Carat_kop

let compile input output optimize opt strict exempt_stack key signer stats
    emit_driver scale rogue no_transform =
  try
    let opt =
      match opt with
      | None -> if optimize then Passes.Pipeline.O_basic else Passes.Pipeline.O_none
      | Some s -> (
        match Passes.Pipeline.opt_level_of_string s with
        | Some o -> o
        | None ->
          Printf.eprintf "kop_compile: unknown --opt level %S (none|basic|aggressive)\n" s;
          exit 2)
    in
    let m =
      if emit_driver then
        Nic.Driver_gen.generate ~module_scale:scale ~with_rogue:rogue ()
      else begin
        match input with
        | Some path -> Kir.Parser.parse_file path
        | None ->
          prerr_endline "kop_compile: need an input file (or --emit-driver)";
          exit 2
      end
    in
    let remarks =
      if emit_driver && no_transform then []
      else if no_transform then
        Passes.Pass.run_pipeline_checked
          (Passes.Pipeline.baseline_sign ~key ~signer ())
          m
      else begin
        let config =
          { Passes.Guard_injection.default_config with exempt_stack }
        in
        let pipeline =
          Passes.Pipeline.kop ~key ~signer ~config ~strict ~opt ()
        in
        let remarks = Passes.Pass.run_pipeline_checked pipeline m in
        (* referencing the certifier also guarantees the analysis layer
           is linked, which is what registers the certify pass above *)
        (match Analysis.Certify.validate m with
        | Ok () -> ()
        | Error e ->
          Printf.eprintf "kop_compile: post-compile certificate check: %s\n"
            (Analysis.Certify.validate_error_to_string e);
          exit 1);
        remarks
      end
    in
    if stats then begin
      Printf.eprintf "module %s:\n" m.Kir.Types.m_name;
      Printf.eprintf "  functions:        %d\n" (List.length m.Kir.Types.funcs);
      Printf.eprintf "  instructions:     %d\n" (Kir.Types.module_instr_count m);
      Printf.eprintf "  loads+stores:     %d\n" (Kir.Types.module_memory_op_count m);
      Printf.eprintf "  guards:           %d\n" (Passes.Guard_injection.count_guards m);
      List.iter
        (fun (pass, r) ->
          List.iter
            (fun (k, v) -> Printf.eprintf "  [%s] %s = %s\n" pass k v)
            r.Passes.Pass.remarks)
        remarks
    end;
    let text = Kir.Printer.to_string m in
    (match output with
    | Some path ->
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc
    | None -> print_string text);
    0
  with
  | Kir.Parser.Parse_error (line, msg) ->
    Printf.eprintf "kop_compile: parse error at line %d: %s\n" line msg;
    1
  | Passes.Pass.Pass_failed (pass, reason) ->
    Printf.eprintf "kop_compile: pass '%s' refused the module: %s\n" pass reason;
    1
  | Kir.Verify.Invalid msg ->
    Printf.eprintf "kop_compile: invalid module: %s\n" msg;
    1

let input =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"INPUT.kir")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"OUTPUT")

let optimize =
  Arg.(value & flag & info [ "optimize" ]
    ~doc:"Run the CARAT-CAKE-style guard optimizations (redundant-guard \
          elimination and loop hoisting). The paper's compiler does not. \
          Shorthand for --opt basic; ignored when --opt is given.")

let opt =
  Arg.(value & opt (some string) None & info [ "opt" ] ~docv:"LEVEL"
    ~doc:"Guard-optimization level: $(b,none) (the paper's compiler), \
          $(b,basic) (local redundant-guard elimination + loop hoisting), \
          or $(b,aggressive) (adds the certificate-gated optimizer: guard \
          coalescing, loop hoist-widening and interprocedural \
          elimination, re-certified after the transform).")

let strict =
  Arg.(value & flag & info [ "strict" ]
    ~doc:"Reject indirect calls that are not covered by cfi_guard \
          instrumentation (re-checked after the extension passes run).")

let exempt_stack =
  Arg.(value & flag & info [ "exempt-stack" ]
    ~doc:"Skip guards on provably frame-local (alloca-derived) accesses.")

let key =
  Arg.(value & opt string Passes.Pipeline.default_key & info [ "key" ]
    ~doc:"Signing key (the kernel must be configured with the same key).")

let signer =
  Arg.(value & opt string Passes.Pipeline.default_signer & info [ "signer" ])

let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print transform statistics.")

let emit_driver =
  Arg.(value & flag & info [ "emit-driver" ]
    ~doc:"Generate the simulated e1000e driver as the input module.")

let scale =
  Arg.(value & opt int 12 & info [ "scale" ] ~doc:"Driver padding scale.")

let rogue =
  Arg.(value & flag & info [ "rogue" ]
    ~doc:"Include the driver's debug peek/poke backdoor entry points.")

let no_transform =
  Arg.(value & flag & info [ "no-transform" ]
    ~doc:"Only sign (baseline build); with --emit-driver, emit untransformed.")

let cmd =
  let doc = "transform a KIR kernel module with CARAT KOP guard injection" in
  Cmd.v
    (Cmd.info "kop_compile" ~doc)
    Term.(
      const compile $ input $ output $ optimize $ opt $ strict $ exempt_stack
      $ key $ signer $ stats $ emit_driver $ scale $ rogue $ no_transform)

let () = exit (Cmd.eval' cmd)
